package chaos

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Proxy is a fault-injecting HTTP man-in-the-middle: it listens on a
// loopback port, forwards every request to the target worker, and
// applies the Schedule's drawn fault for each non-exempt request. The
// campaign places one Proxy in front of each worker and points the
// coordinator at the proxies, so every coordinator→worker forward
// crosses the fault injector while the workers themselves stay honest.
type Proxy struct {
	sched  Schedule
	target string
	client *http.Client

	srv *http.Server
	ln  net.Listener
	url string

	n      atomic.Uint64 // non-exempt request index (the Schedule's domain)
	counts [len(kindNames)]atomic.Int64
}

// NewProxy starts a proxy in front of target (a base URL such as
// "http://127.0.0.1:4417"). Close releases the listener.
func NewProxy(target string, sched Schedule) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &Proxy{
		sched:  sched,
		target: target,
		client: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}},
		ln:     ln,
		url:    "http://" + ln.Addr().String(),
	}
	p.srv = &http.Server{Handler: p}
	go p.srv.Serve(ln)
	return p, nil
}

// URL is the proxy's base URL (what the coordinator should dial).
func (p *Proxy) URL() string { return p.url }

// Target is the wrapped worker's base URL.
func (p *Proxy) Target() string { return p.target }

// Close shuts the listener down and closes idle upstream connections.
func (p *Proxy) Close() error {
	err := p.srv.Close()
	p.client.CloseIdleConnections()
	return err
}

// Counts reports how many faults of each kind this proxy injected
// (including "none" for untouched non-exempt requests).
func (p *Proxy) Counts() map[string]int64 {
	out := make(map[string]int64, len(kindNames))
	for i := range p.counts {
		if v := p.counts[i].Load(); v != 0 {
			out[kindNames[i]] = v
		}
	}
	return out
}

// Injected is the total number of non-none faults applied.
func (p *Proxy) Injected() int64 {
	var total int64
	for i := range p.counts {
		if Kind(i) != None {
			total += p.counts[i].Load()
		}
	}
	return total
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.sched.Exempt[r.URL.Path] {
		p.forward(w, r, Fault{})
		return
	}
	f := p.sched.ForIndex(p.n.Add(1) - 1)
	p.counts[f.Kind].Add(1)
	switch f.Kind {
	case Reset:
		p.reset(w)
	case Blackhole:
		p.blackhole(w, r)
	default:
		p.forward(w, r, f)
	}
}

// reset hijacks the client connection and closes it with linger 0 so
// the peer sees a TCP RST (connection reset), not a clean EOF.
func (p *Proxy) reset(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		// Should not happen for an HTTP/1 server; degrade to a 502.
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

// blackhole swallows the request: no bytes flow either way until the
// caller gives up or MaxStall elapses, then the connection is reset.
// The cap guarantees an injected fault can never outlive the victim's
// own attempt timeout by much — chaos must not hang the harness itself.
func (p *Proxy) blackhole(w http.ResponseWriter, r *http.Request) {
	stall := p.sched.MaxStall
	if stall <= 0 {
		stall = 2 * time.Second
	}
	t := time.NewTimer(stall)
	defer t.Stop()
	select {
	case <-r.Context().Done():
	case <-t.C:
	}
	p.reset(w)
}

// forward relays the request upstream and the response back, applying
// any latency/slow-loris/truncate/bit-flip fault on the way.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, f Fault) {
	ctx := r.Context()
	if f.Kind == Latency {
		t := time.NewTimer(f.Latency)
		select {
		case <-ctx.Done():
			t.Stop()
			p.reset(w)
			return
		case <-t.C:
		}
	}

	url := p.target + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, url, r.Body)
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		// Upstream actually failed; surface it as a reset so the
		// coordinator exercises the same connection-error path.
		p.reset(w)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		p.reset(w)
		return
	}

	switch f.Kind {
	case BitFlip:
		if len(body) > 0 {
			bit := f.BitPos % uint64(len(body)*8)
			body[bit/8] ^= 1 << (bit % 8)
		}
		p.relay(w, resp, body)
	case Truncate:
		p.truncate(w, resp, body)
	case SlowLoris:
		p.slowLoris(w, ctx, resp, body)
	default:
		p.relay(w, resp, body)
	}
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

func (p *Proxy) relay(w http.ResponseWriter, resp *http.Response, body []byte) {
	copyHeader(w.Header(), resp.Header)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// truncate advertises the full body length but sends only half, then
// closes the connection: the reader sees an unexpected EOF mid-body.
// Hijacked so the HTTP layer cannot "fix" the framing for us.
func (p *Proxy) truncate(w http.ResponseWriter, resp *http.Response, body []byte) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		p.relay(w, resp, body)
		return
	}
	conn, bw, err := hj.Hijack()
	if err != nil {
		return
	}
	defer conn.Close()
	fmt.Fprintf(bw, "HTTP/1.1 %d %s\r\n", resp.StatusCode, http.StatusText(resp.StatusCode))
	resp.Header.Write(bw)
	fmt.Fprintf(bw, "Content-Length: %d\r\n\r\n", len(body))
	bw.Write(body[:len(body)/2])
	bw.Flush()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
}

// slowLoris dribbles the body out in chunks across SlowLorisDur. The
// body does arrive whole eventually — the fault under test is whether
// the reader's deadline machinery tolerates a peer that is technically
// alive but pathologically slow.
func (p *Proxy) slowLoris(w http.ResponseWriter, ctx context.Context, resp *http.Response, body []byte) {
	copyHeader(w.Header(), resp.Header)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(resp.StatusCode)
	fl, _ := w.(http.Flusher)
	dur := p.sched.SlowLorisDur
	if dur <= 0 {
		dur = 250 * time.Millisecond
	}
	const chunks = 8
	step := dur / chunks
	for i := 0; i < chunks; i++ {
		lo, hi := i*len(body)/chunks, (i+1)*len(body)/chunks
		if _, err := w.Write(body[lo:hi]); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
		if i < chunks-1 {
			t := time.NewTimer(step)
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
		}
	}
}

// Transport wraps an http.RoundTripper with the same fault model, for
// tests that want client-side injection without a real proxy hop.
// Reset and Blackhole surface as transport errors; SlowLoris wraps the
// response body in a throttled reader; Truncate cuts it short.
type Transport struct {
	Base  http.RoundTripper
	Sched Schedule

	n      atomic.Uint64
	counts [len(kindNames)]atomic.Int64
}

// Counts mirrors Proxy.Counts for the transport injector.
func (t *Transport) Counts() map[string]int64 {
	out := make(map[string]int64, len(kindNames))
	for i := range t.counts {
		if v := t.counts[i].Load(); v != 0 {
			out[kindNames[i]] = v
		}
	}
	return out
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Sched.Exempt[req.URL.Path] {
		return t.base().RoundTrip(req)
	}
	f := t.Sched.ForIndex(t.n.Add(1) - 1)
	t.counts[f.Kind].Add(1)
	ctx := req.Context()
	switch f.Kind {
	case Reset:
		return nil, fmt.Errorf("chaos: %w", errReset)
	case Blackhole:
		stall := t.Sched.MaxStall
		if stall <= 0 {
			stall = 2 * time.Second
		}
		tm := time.NewTimer(stall)
		defer tm.Stop()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-tm.C:
			return nil, fmt.Errorf("chaos: blackhole: %w", errReset)
		}
	case Latency:
		tm := time.NewTimer(f.Latency)
		select {
		case <-ctx.Done():
			tm.Stop()
			return nil, ctx.Err()
		case <-tm.C:
		}
	}
	resp, err := t.base().RoundTrip(req)
	if err != nil {
		return resp, err
	}
	switch f.Kind {
	case BitFlip:
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if len(body) > 0 {
			bit := f.BitPos % uint64(len(body)*8)
			body[bit/8] ^= 1 << (bit % 8)
		}
		resp.Body = io.NopCloser(newByteReader(body))
	case Truncate:
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		resp.Body = io.NopCloser(&truncatedReader{data: body[:len(body)/2]})
	case SlowLoris:
		dur := t.Sched.SlowLorisDur
		if dur <= 0 {
			dur = 250 * time.Millisecond
		}
		resp.Body = &slowBody{inner: resp.Body, step: dur / 8, ctx: ctx}
	}
	return resp, nil
}

var errReset = &net.OpError{Op: "read", Net: "tcp", Err: fmt.Errorf("connection reset by chaos")}

func newByteReader(b []byte) io.Reader { return &byteReader{b: b} }

type byteReader struct{ b []byte }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// truncatedReader yields its data then an unexpected EOF, modeling a
// connection cut mid-body.
type truncatedReader struct{ data []byte }

func (r *truncatedReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// slowBody throttles reads: one small chunk per step.
type slowBody struct {
	inner io.ReadCloser
	step  time.Duration
	ctx   context.Context
}

func (s *slowBody) Read(p []byte) (int, error) {
	t := time.NewTimer(s.step)
	select {
	case <-s.ctx.Done():
		t.Stop()
		return 0, s.ctx.Err()
	case <-t.C:
	}
	if len(p) > 64 {
		p = p[:64]
	}
	return s.inner.Read(p)
}

func (s *slowBody) Close() error { return s.inner.Close() }

// Listener wraps a net.Listener, resetting a scheduled fraction of
// accepted connections before the server ever sees them (accept-queue
// chaos). Only Reset is meaningful at this layer; richer faults need
// the HTTP-aware Proxy.
type Listener struct {
	net.Listener
	Sched Schedule

	n      atomic.Uint64
	resets atomic.Int64
}

// Resets reports how many connections were killed at accept time.
func (l *Listener) Resets() int64 { return l.resets.Load() }

func (l *Listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		f := l.Sched.ForIndex(l.n.Add(1) - 1)
		if f.Kind != Reset && f.Kind != Blackhole {
			return conn, nil
		}
		l.resets.Add(1)
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		conn.Close()
	}
}
