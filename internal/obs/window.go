package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// RateWindow counts events into a ring of fixed-width time slots so the
// recent rate (requests/sec over the last 1m or 5m) can be read at any
// moment without a background goroutine. Slots are reclaimed lazily: a
// writer landing on a slot whose epoch is stale zeroes it first, so an
// idle window decays to zero as soon as someone reads it. All operations
// are atomic — any number of writers may Add while scrapes Read.
type RateWindow struct {
	step  time.Duration
	slots []rateSlot
	now   func() time.Time
}

type rateSlot struct {
	epoch atomic.Int64 // slot index this bucket currently represents
	count atomic.Int64
}

// NewRateWindow builds a window able to answer rates over any interval
// up to span, with step-sized slots (e.g. span 5m, step 5s). step <= 0
// defaults to 5s; span is rounded up to a whole number of steps.
func NewRateWindow(span, step time.Duration) *RateWindow {
	if step <= 0 {
		step = 5 * time.Second
	}
	n := int((span + step - 1) / step)
	if n < 1 {
		n = 1
	}
	// One extra slot so the oldest full slot of a span-wide read is not
	// the one the current instant is about to overwrite.
	return &RateWindow{step: step, slots: make([]rateSlot, n+1), now: time.Now}
}

func (w *RateWindow) index(t time.Time) int64 { return t.UnixNano() / int64(w.step) }

// Add records n events now.
func (w *RateWindow) Add(n int64) {
	idx := w.index(w.now())
	s := &w.slots[int(idx%int64(len(w.slots)))]
	for {
		e := s.epoch.Load()
		if e == idx {
			break
		}
		if s.epoch.CompareAndSwap(e, idx) {
			s.count.Store(0)
			break
		}
	}
	s.count.Add(n)
}

// Total sums the events recorded over the trailing window (including the
// current partial slot). Windows longer than the ring span are clamped.
func (w *RateWindow) Total(window time.Duration) int64 {
	cur := w.index(w.now())
	n := int64((window + w.step - 1) / w.step)
	if n > int64(len(w.slots)-1) {
		n = int64(len(w.slots) - 1)
	}
	var sum int64
	for i := range w.slots {
		s := &w.slots[i]
		if e := s.epoch.Load(); e > cur-n && e <= cur {
			sum += s.count.Load()
		}
	}
	return sum
}

// Rate returns events per second over the trailing window.
func (w *RateWindow) Rate(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(w.Total(window)) / window.Seconds()
}

// HotProgram is one row of the top-K hot-program table.
type HotProgram struct {
	Fingerprint string
	Runs        int64
	Slots       int64
	P95NS       float64
}

// HotPrograms tracks per-fingerprint run activity — runs, slots and a
// latency histogram — over a rolling window, bounding its memory by
// evicting the coldest fingerprint when the table is full. It is what
// makes routing skew and cache churn visible: the top-K table is
// exported as a labeled Prometheus gauge family.
//
// Rolling semantics: every rotatePeriod, counts are halved and the
// latency histograms Reset (exponential decay rather than a hard
// tumbling window, so a steady hot program never blinks out of the
// table). Rotation happens lazily inside Record/TopK — no background
// goroutine.
type HotPrograms struct {
	mu         sync.Mutex
	max        int
	rotate     time.Duration
	lastRotate time.Time
	progs      map[string]*hotProg
	now        func() time.Time
}

type hotProg struct {
	runs  int64
	slots int64
	hist  *Histogram
}

// NewHotPrograms builds a table bounded to max fingerprints (<= 0:
// default 256) rotating every rotatePeriod (<= 0: default 5m).
func NewHotPrograms(max int, rotatePeriod time.Duration) *HotPrograms {
	if max <= 0 {
		max = 256
	}
	if rotatePeriod <= 0 {
		rotatePeriod = 5 * time.Minute
	}
	return &HotPrograms{
		max:        max,
		rotate:     rotatePeriod,
		lastRotate: time.Now(),
		progs:      map[string]*hotProg{},
		now:        time.Now,
	}
}

// Record accounts one run of fingerprint fp carrying slots input slots,
// answered in latNS nanoseconds.
func (h *HotPrograms) Record(fp string, slots int, latNS int64) {
	h.mu.Lock()
	h.maybeRotateLocked()
	p := h.progs[fp]
	if p == nil {
		if len(h.progs) >= h.max {
			h.evictColdestLocked()
		}
		p = &hotProg{hist: NewHistogram()}
		h.progs[fp] = p
	}
	p.runs++
	p.slots += int64(slots)
	hist := p.hist
	h.mu.Unlock()
	// Observe outside the table lock; the histogram is internally atomic.
	hist.Observe(latNS)
}

func (h *HotPrograms) maybeRotateLocked() {
	now := h.now()
	if now.Sub(h.lastRotate) < h.rotate {
		return
	}
	h.lastRotate = now
	for fp, p := range h.progs {
		p.runs /= 2
		p.slots /= 2
		if p.runs == 0 {
			delete(h.progs, fp)
			continue
		}
		p.hist.Reset()
	}
}

func (h *HotPrograms) evictColdestLocked() {
	var coldest string
	var min int64 = -1
	for fp, p := range h.progs {
		if min < 0 || p.runs < min {
			min, coldest = p.runs, fp
		}
	}
	if coldest != "" {
		delete(h.progs, coldest)
	}
}

// TopK returns the k hottest programs by run count, descending (ties
// broken by fingerprint for stable scrape output).
func (h *HotPrograms) TopK(k int) []HotProgram {
	h.mu.Lock()
	h.maybeRotateLocked()
	out := make([]HotProgram, 0, len(h.progs))
	for fp, p := range h.progs {
		out = append(out, HotProgram{
			Fingerprint: fp,
			Runs:        p.runs,
			Slots:       p.slots,
			P95NS:       p.hist.Quantile(0.95),
		})
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Runs != out[j].Runs {
			return out[i].Runs > out[j].Runs
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// HotProgramSamples renders the top-K table as labeled samples for one
// of the hot-program gauge families; field selects runs/slots/p95.
func HotProgramSamples(table []HotProgram, field func(HotProgram) float64) []PromSample {
	out := make([]PromSample, len(table))
	for i, p := range table {
		out[i] = PromSample{
			Labels: []PromLabel{{"fingerprint", p.Fingerprint}},
			Value:  field(p),
		}
	}
	return out
}
