package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is a dependency-free Prometheus text-exposition layer: the
// expvar counters the servers already keep, re-rendered in the format
// every standard scraper ingests (exposition format 0.0.4), with the
// log-bucketed obs.Histogram exported as native _bucket/_sum/_count
// series. Naming conventions (DESIGN.md §14): everything is prefixed per
// binary (hyperap_ for serve, hyperap_coord_ for the coordinator),
// counters end in _total, histograms keep their nanosecond unit in the
// name (_ns).

// PromLabel is one label pair of a sample.
type PromLabel struct{ Key, Value string }

// PromSample is one sample of a metric family: a value under an
// optional label set.
type PromSample struct {
	Labels []PromLabel
	Value  float64
}

type promFamily struct {
	name    string
	help    string
	typ     string // "counter" | "gauge" | "histogram"
	collect func() []PromSample
	hist    func() *Histogram
}

// PromRegistry is an ordered set of metric families rendered on demand;
// every family reads its current value through a callback at scrape
// time, so the registry holds no state of its own and never needs
// per-observation bookkeeping on the hot path.
type PromRegistry struct {
	mu       sync.Mutex
	families []*promFamily
	byName   map[string]*promFamily
}

// NewPromRegistry builds an empty registry.
func NewPromRegistry() *PromRegistry {
	return &PromRegistry{byName: map[string]*promFamily{}}
}

func (r *PromRegistry) add(f *promFamily) {
	if !validPromName(f.name) {
		panic(fmt.Sprintf("obs: invalid prometheus metric name %q", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate prometheus metric name %q", f.name))
	}
	r.byName[f.name] = f
	r.families = append(r.families, f)
}

// Counter registers a single-sample counter family.
func (r *PromRegistry) Counter(name, help string, fn func() float64) {
	r.add(&promFamily{name: name, help: help, typ: "counter",
		collect: func() []PromSample { return []PromSample{{Value: fn()}} }})
}

// Gauge registers a single-sample gauge family.
func (r *PromRegistry) Gauge(name, help string, fn func() float64) {
	r.add(&promFamily{name: name, help: help, typ: "gauge",
		collect: func() []PromSample { return []PromSample{{Value: fn()}} }})
}

// CounterVec registers a labeled counter family; fn returns the current
// sample set on every scrape.
func (r *PromRegistry) CounterVec(name, help string, fn func() []PromSample) {
	r.add(&promFamily{name: name, help: help, typ: "counter", collect: fn})
}

// GaugeVec registers a labeled gauge family.
func (r *PromRegistry) GaugeVec(name, help string, fn func() []PromSample) {
	r.add(&promFamily{name: name, help: help, typ: "gauge", collect: fn})
}

// Histogram registers an obs.Histogram as a native Prometheus histogram:
// its power-of-two buckets become cumulative _bucket series with `le`
// upper bounds, plus _sum and _count.
func (r *PromRegistry) Histogram(name, help string, h *Histogram) {
	r.add(&promFamily{name: name, help: help, typ: "histogram", hist: func() *Histogram { return h }})
}

// RegisterExpvarMap walks an expvar map and registers every entry under
// prefix: Ints become counters (name + "_total") unless named in gauges,
// Floats become gauges, nested Maps become labeled counter families
// (label "key"), and Func entries (the JSON histogram summaries) are
// skipped — callers register the underlying histograms natively. Names
// in skip are left out entirely (for entries that get a hand-built
// family with better labels).
func (r *PromRegistry) RegisterExpvarMap(prefix string, m *expvar.Map, gauges, skip map[string]bool) {
	m.Do(func(kv expvar.KeyValue) {
		name := kv.Key
		if skip[name] || !validPromName(prefix+name) {
			return
		}
		switch v := kv.Value.(type) {
		case *expvar.Int:
			if gauges[name] {
				r.Gauge(prefix+name, "expvar gauge "+name, func() float64 { return float64(v.Value()) })
			} else {
				r.Counter(prefix+name+"_total", "expvar counter "+name, func() float64 { return float64(v.Value()) })
			}
		case *expvar.Float:
			r.Gauge(prefix+name, "expvar gauge "+name, func() float64 { return v.Value() })
		case *expvar.Map:
			r.CounterVec(prefix+name+"_total", "expvar map "+name, func() []PromSample {
				var out []PromSample
				v.Do(func(ekv expvar.KeyValue) {
					if iv, ok := ekv.Value.(*expvar.Int); ok {
						out = append(out, PromSample{
							Labels: []PromLabel{{"key", ekv.Key}},
							Value:  float64(iv.Value()),
						})
					}
				})
				return out
			})
		}
	})
}

// WriteText renders every family in exposition format 0.0.4.
func (r *PromRegistry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*promFamily(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		if f.typ == "histogram" {
			if err := writeHistogram(w, f.name, f.hist()); err != nil {
				return err
			}
			continue
		}
		samples := f.collect()
		// Stable output: scrapes diff cleanly and tests can substring.
		sort.SliceStable(samples, func(i, j int) bool {
			return renderLabels(samples[i].Labels) < renderLabels(samples[j].Labels)
		})
		for _, s := range samples {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.Labels), formatPromValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ServeHTTP serves the exposition text (GET /metrics/prometheus).
func (r *PromRegistry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WriteText(w)
}

// writeHistogram renders one histogram: cumulative buckets for every
// non-empty power-of-two bucket (a 64-bucket flat dump would be mostly
// zeros), always closing with +Inf, then _sum and _count. The bucket
// snapshot is taken first so count == the +Inf bucket even under
// concurrent writers.
func writeHistogram(w io.Writer, name string, h *Histogram) error {
	counts := h.Buckets()
	var cum, total int64
	for _, c := range counts {
		total += c
	}
	for i, c := range counts {
		if c == 0 {
			continue
		}
		cum += c
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, BucketUpperBound(i), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum(), name, total); err != nil {
		return err
	}
	return nil
}

func renderLabels(labels []PromLabel) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "=\"" + escapeLabelValue(l.Value) + "\""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// validPromName reports whether name matches the metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		letter := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// InjectPromLabel rewrites one exposition sample line to carry an extra
// label (the coordinator's scrape federation stamps each worker's series
// with node="<url>"). Comment and blank lines pass through unchanged.
func InjectPromLabel(line, key, value string) string {
	trimmed := strings.TrimSpace(line)
	if trimmed == "" || strings.HasPrefix(trimmed, "#") {
		return line
	}
	pair := key + "=\"" + escapeLabelValue(value) + "\""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return line
		}
		if strings.TrimSpace(line[i+1:j]) == "" {
			return line[:i+1] + pair + line[j:]
		}
		return line[:j] + "," + pair + line[j:]
	}
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return line
	}
	return line[:i] + "{" + pair + "}" + line[i:]
}

// RegisterRatesAndHot registers the rolling request/error-rate gauges
// and the top-K hot-program gauge families on a registry — the shared
// shape of the serve and coordinator observability surfaces.
func RegisterRatesAndHot(reg *PromRegistry, prefix string, reqW, errW *RateWindow, hot *HotPrograms, topK int) {
	reg.Gauge(prefix+"request_rate_1m", "requests per second over the last minute",
		func() float64 { return reqW.Rate(time.Minute) })
	reg.Gauge(prefix+"request_rate_5m", "requests per second over the last five minutes",
		func() float64 { return reqW.Rate(5 * time.Minute) })
	reg.Gauge(prefix+"error_rate_1m", "5xx responses per second over the last minute",
		func() float64 { return errW.Rate(time.Minute) })
	reg.Gauge(prefix+"error_rate_5m", "5xx responses per second over the last five minutes",
		func() float64 { return errW.Rate(5 * time.Minute) })
	reg.GaugeVec(prefix+"hot_program_runs", "runs per hot program (rolling, top-K)", func() []PromSample {
		return HotProgramSamples(hot.TopK(topK), func(p HotProgram) float64 { return float64(p.Runs) })
	})
	reg.GaugeVec(prefix+"hot_program_slots", "input slots per hot program (rolling, top-K)", func() []PromSample {
		return HotProgramSamples(hot.TopK(topK), func(p HotProgram) float64 { return float64(p.Slots) })
	})
	reg.GaugeVec(prefix+"hot_program_p95_ns", "p95 request latency per hot program (ns)", func() []PromSample {
		return HotProgramSamples(hot.TopK(topK), func(p HotProgram) float64 { return p.P95NS })
	})
}
