package obs

import (
	"context"
	"strings"
	"testing"
)

func TestNewTraceContextValid(t *testing.T) {
	tc := NewTraceContext(true)
	if !tc.Valid() {
		t.Fatalf("fresh context invalid: %+v", tc)
	}
	if len(tc.TraceID) != 32 || len(tc.SpanID) != 16 {
		t.Fatalf("id lengths: trace %d span %d", len(tc.TraceID), len(tc.SpanID))
	}
	if !tc.Sampled {
		t.Error("sampled flag lost")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	for _, sampled := range []bool{true, false} {
		tc := NewTraceContext(sampled)
		h := tc.Traceparent()
		got, ok := ParseTraceparent(h)
		if !ok {
			t.Fatalf("ParseTraceparent(%q) failed", h)
		}
		if got != tc {
			t.Errorf("round trip: got %+v want %+v", got, tc)
		}
	}
}

func TestTraceparentFormat(t *testing.T) {
	tc := TraceContext{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("cd", 8), Sampled: true}
	want := "00-" + tc.TraceID + "-" + tc.SpanID + "-01"
	if got := tc.Traceparent(); got != want {
		t.Errorf("Traceparent() = %q, want %q", got, want)
	}
	tc.Sampled = false
	if got := tc.Traceparent(); !strings.HasSuffix(got, "-00") {
		t.Errorf("unsampled flags = %q, want -00 suffix", got)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("cd", 8) + "-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("control header rejected: %q", valid)
	}
	bad := []string{
		"",
		"00-short-" + strings.Repeat("cd", 8) + "-01",
		"00-" + strings.Repeat("ab", 16) + "-short-01",
		"00-" + strings.Repeat("zz", 16) + "-" + strings.Repeat("cd", 8) + "-01", // non-hex
		"00-" + strings.Repeat("00", 16) + "-" + strings.Repeat("cd", 8) + "-01", // zero trace id
		"00-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("00", 8) + "-01", // zero span id
		"ff-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("cd", 8) + "-01", // forbidden version
		"00" + strings.Repeat("ab", 16) + strings.Repeat("cd", 8) + "01",         // no dashes
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", h)
		}
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Unknown (non-ff) versions parse per W3C forward compatibility.
	h := "01-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("cd", 8) + "-01"
	tc, ok := ParseTraceparent(h)
	if !ok || !tc.Sampled {
		t.Fatalf("future version rejected: %q -> %+v ok=%v", h, tc, ok)
	}
}

func TestChildKeepsTrace(t *testing.T) {
	tc := NewTraceContext(true)
	c := tc.Child()
	if c.TraceID != tc.TraceID || c.Sampled != tc.Sampled {
		t.Errorf("child changed trace identity: %+v vs %+v", c, tc)
	}
	if c.SpanID == tc.SpanID {
		t.Error("child must get a fresh span id")
	}
	if !c.Valid() {
		t.Errorf("child invalid: %+v", c)
	}
}

func TestTraceContextOnContext(t *testing.T) {
	tc := NewTraceContext(true)
	ctx := WithTraceContext(context.Background(), tc)
	if got := TraceContextFrom(ctx); got != tc {
		t.Errorf("TraceContextFrom = %+v, want %+v", got, tc)
	}
	if got := TraceContextFrom(context.Background()); got.Valid() {
		t.Error("bare context must carry no valid trace context")
	}
}
