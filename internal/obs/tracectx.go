package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
)

// TraceContext is the distributed trace identity carried on every hop of
// a cluster request, in the W3C trace-context style: a 16-byte trace id
// shared by every span of the request, the 8-byte id of the current span
// (the parent of whatever the receiving process records), and the
// sampled flag that decides whether processes record spans at all.
//
// The wire form is the traceparent header,
//
//	Traceparent: 00-<32 hex trace-id>-<16 hex span-id>-<01|00>
//
// set by the coordinator on ingress (or accepted from the client) and
// re-sent on every forward attempt, so a failover retry stays inside the
// same trace.
type TraceContext struct {
	TraceID string // 32 lowercase hex characters
	SpanID  string // 16 lowercase hex characters
	Sampled bool
}

// NewSpanID returns a fresh 16-hex-character span identifier.
func NewSpanID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000000000ff"
	}
	return hex.EncodeToString(b[:])
}

// NewTraceContext starts a new trace with a fresh trace id and root span
// id.
func NewTraceContext(sampled bool) TraceContext {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return TraceContext{TraceID: strings.Repeat("0", 31) + "1", SpanID: NewSpanID(), Sampled: sampled}
	}
	return TraceContext{TraceID: hex.EncodeToString(b[:]), SpanID: NewSpanID(), Sampled: sampled}
}

// Valid reports whether the context carries a well-formed, non-zero
// trace id and span id.
func (tc TraceContext) Valid() bool {
	return isHex(tc.TraceID, 32) && isHex(tc.SpanID, 16) &&
		tc.TraceID != strings.Repeat("0", 32) && tc.SpanID != strings.Repeat("0", 16)
}

// Child returns a context for a new span inside the same trace: fresh
// span id, inherited trace id and sampled flag. The parent relationship
// (this context's span id) is the caller's to record.
func (tc TraceContext) Child() TraceContext {
	return TraceContext{TraceID: tc.TraceID, SpanID: NewSpanID(), Sampled: tc.Sampled}
}

// Traceparent renders the header value ("00-<trace>-<span>-<flags>").
func (tc TraceContext) Traceparent() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-" + flags
}

// ParseTraceparent parses a traceparent header. Unknown versions are
// accepted as long as the field shape matches (per the W3C forward-
// compatibility rule); malformed or all-zero ids return ok=false so the
// receiver starts a fresh trace instead of propagating garbage.
func ParseTraceparent(h string) (TraceContext, bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 || !isHex(parts[0], 2) || parts[0] == "ff" {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: strings.ToLower(parts[1]), SpanID: strings.ToLower(parts[2])}
	if !tc.Valid() || !isHex(parts[3], 2) {
		return TraceContext{}, false
	}
	flags, err := hex.DecodeString(parts[3])
	if err != nil {
		return TraceContext{}, false
	}
	tc.Sampled = flags[0]&1 == 1
	return tc, true
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

type traceCtxKey struct{}

// WithTraceContext attaches the trace context to a request context.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom returns the context's trace context, or a zero (not
// Valid, not Sampled) value.
func TraceContextFrom(ctx context.Context) TraceContext {
	tc, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc
}
