package obs

import (
	"context"

	"encoding/json"
	"testing"

	"hyperap/internal/arch"
	"hyperap/internal/isa"
)

// tracedChip runs a tiny program with tracing on and returns the chip.
func tracedChip(t *testing.T) *arch.Chip {
	t.Helper()
	cfg := arch.DefaultSmallConfig()
	cfg.SubarraysPerBank = 2
	cfg.PEsPerSubarray = 1
	cfg.Rows = 8
	cfg.Bits = 16
	c := arch.New(cfg)
	c.Tracing = true
	prog := isa.Program{
		isa.Search(false, false),
		isa.Instruction{Op: isa.OpCount},
	}
	if err := c.ExecuteParallel(context.Background(), prog, 2); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChromeTrace(t *testing.T) {
	c := tracedChip(t)
	b, err := ChromeTrace(c.TraceEvents(), TraceMeta{Program: "test.hap", CyclePeriodNS: 2})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.OtherData["program"] != "test.hap" {
		t.Errorf("program metadata = %v", doc.OtherData["program"])
	}
	var slices, counters, metas int
	seenPE := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
			if ev["name"] == "" || ev["dur"].(float64) <= 0 {
				t.Errorf("slice malformed: %v", ev)
			}
			seenPE[ev["tid"].(float64)] = true
			args := ev["args"].(map[string]any)
			if _, ok := args["energy_fJ"]; !ok {
				t.Errorf("slice missing energy: %v", ev)
			}
		case "C":
			counters++
		case "M":
			metas++
		}
	}
	// 2 instructions × 2 subarrays.
	if slices != 4 {
		t.Errorf("slices = %d, want 4", slices)
	}
	if counters != 4 {
		t.Errorf("counters = %d, want 4", counters)
	}
	if len(seenPE) != 2 {
		t.Errorf("PE threads = %d, want 2", len(seenPE))
	}
	if metas == 0 {
		t.Error("no process/thread naming metadata emitted")
	}
}

func TestChromeTraceTimescale(t *testing.T) {
	c := tracedChip(t)
	b, err := ChromeTrace(c.TraceEvents(), TraceMeta{CyclePeriodNS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" || ev["name"] != "Search" {
			continue
		}
		// Search: 1 cycle × 1000 ns = 1 µs duration starting at ts 0.
		if ev["ts"].(float64) != 0 || ev["dur"].(float64) != 1 {
			t.Errorf("Search slice timing wrong: ts=%v dur=%v", ev["ts"], ev["dur"])
		}
	}
}
