package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"regexp"
	"testing"
	"time"
)

func TestNewRequestID(t *testing.T) {
	re := regexp.MustCompile(`^[0-9a-f]{16}$`)
	a, b := NewRequestID(), NewRequestID()
	if !re.MatchString(a) || !re.MatchString(b) {
		t.Fatalf("malformed ids: %q %q", a, b)
	}
	if a == b {
		t.Fatalf("ids collide: %q", a)
	}
}

func TestSpanPhasesAndAttrs(t *testing.T) {
	sp := StartSpan("abc123")
	sp.Phase("compile", 5*time.Millisecond)
	done := sp.Time("run")
	done()
	var buf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&buf, nil))
	log.LogAttrs(context.Background(), slog.LevelInfo, "request", sp.Attrs()...)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	if rec["req_id"] != "abc123" {
		t.Errorf("req_id = %v", rec["req_id"])
	}
	phases, ok := rec["phases"].(map[string]any)
	if !ok {
		t.Fatalf("phases missing: %v", rec)
	}
	if phases["compile"].(float64) != float64(5*time.Millisecond) {
		t.Errorf("compile phase = %v", phases["compile"])
	}
	if _, ok := phases["run"]; !ok {
		t.Errorf("run phase missing: %v", phases)
	}
	if rec["total"].(float64) <= 0 {
		t.Errorf("total = %v", rec["total"])
	}
}

func TestSpanNilSafe(t *testing.T) {
	var sp *Span
	sp.Phase("x", time.Second) // must not panic
	sp.Time("y")()
	if sp.Attrs() != nil {
		t.Error("nil span must render no attrs")
	}
}

func TestSpanContext(t *testing.T) {
	sp := StartSpan("ctx")
	ctx := WithSpan(context.Background(), sp)
	if SpanFrom(ctx) != sp {
		t.Error("SpanFrom must return the attached span")
	}
	if SpanFrom(context.Background()) != nil {
		t.Error("SpanFrom on a bare context must be nil")
	}
}
