package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4}, {16, 4},
		{17, 5},
		{1024, 10}, {1025, 11},
		{1 << 20, 20}, {1<<20 + 1, 21},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := BucketIndex(c.v); got != c.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's upper bound must land in its own bucket (boundaries
	// are inclusive above).
	for i := 0; i < 63; i++ {
		if got := BucketIndex(BucketUpperBound(i)); got != i {
			t.Errorf("BucketIndex(BucketUpperBound(%d)=%d) = %d, want %d",
				i, BucketUpperBound(i), got, i)
		}
	}
	if BucketUpperBound(63) != math.MaxInt64 {
		t.Errorf("BucketUpperBound(63) = %d, want MaxInt64", BucketUpperBound(63))
	}
}

// TestQuantileBucketEdges: observations placed exactly at bucket upper
// bounds must reproduce themselves exactly at the matching ranks — the
// interpolation contract the serving metrics rely on.
func TestQuantileBucketEdges(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 2, 4, 8} {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.25, 1}, // rank 1 → bucket 0 edge, exactly
		{0.50, 2}, // rank 2 → bucket 1 edge
		{0.75, 4}, // rank 3 → bucket 2 edge
		{1.00, 8}, // rank 4 → bucket 3 edge
		{0.0, 1},  // clamps to the first observation
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := NewHistogram()
	// Four observations in bucket 3 (4,8]: ranks interpolate linearly
	// across the bucket's span.
	for i := 0; i < 4; i++ {
		h.Observe(5)
	}
	// target = q*4; est = 4 + 4*target/4 = 4 + q*4, clamped to [5,5].
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %g, want 5 (clamped to observed range)", got)
	}
	h2 := NewHistogram()
	h2.Observe(5)
	h2.Observe(7) // both bucket 3
	// q=0.5: target=1, est = 4 + 4*(1/2) = 6, inside [5,7] → 6 exactly.
	if got := h2.Quantile(0.5); got != 6 {
		t.Errorf("Quantile(0.5) = %g, want 6 (mid-bucket interpolation)", got)
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram()
	if s := h.Summary().(map[string]any); s["count"].(int64) != 0 {
		t.Errorf("empty summary count = %v", s["count"])
	}
	h.ObserveDuration(100 * time.Nanosecond)
	h.Observe(300)
	s := h.Summary().(map[string]any)
	if s["count"].(int64) != 2 || s["sum_ns"].(int64) != 400 ||
		s["min_ns"].(int64) != 100 || s["max_ns"].(int64) != 300 {
		t.Errorf("summary wrong: %v", s)
	}
	if s["mean_ns"].(float64) != 200 {
		t.Errorf("mean = %v, want 200", s["mean_ns"])
	}
	for _, k := range []string{"p50_ns", "p95_ns", "p99_ns"} {
		p := s[k].(float64)
		if p < 100 || p > 300 {
			t.Errorf("%s = %g outside observed range [100,300]", k, p)
		}
	}
}

func TestHistogramNegativeClamp(t *testing.T) {
	h := NewHistogram()
	h.Observe(-42)
	if h.Count() != 1 || h.Sum() != 0 {
		t.Errorf("negative observation: count=%d sum=%d, want 1/0", h.Count(), h.Sum())
	}
}

// TestHistogramConcurrent hammers Observe from 32 goroutines (run under
// -race by make check) and verifies no observations are lost.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const goroutines, per = 32, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(g*per + i))
				if i%64 == 0 {
					_ = h.Quantile(0.95) // concurrent reads must be safe too
					_ = h.Summary()
				}
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Errorf("count = %d, want %d", h.Count(), goroutines*per)
	}
	if mn := h.Quantile(0); mn < 0 || mn > 1 {
		t.Errorf("min quantile = %g, want within bucket 0", mn)
	}
	if mx := h.Quantile(1); mx != float64(goroutines*per-1) {
		t.Errorf("max quantile = %g, want %d", mx, goroutines*per-1)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("after Reset: count=%d sum=%d, want 0/0", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.95); q != 0 {
		t.Fatalf("quantile after Reset = %g, want 0", q)
	}
	var total int64
	for _, c := range h.Buckets() {
		total += c
	}
	if total != 0 {
		t.Fatalf("buckets after Reset sum to %d, want 0", total)
	}
	// The histogram must be fully reusable.
	h.Observe(7)
	if h.Count() != 1 || h.Quantile(1) != 7 {
		t.Fatalf("post-Reset reuse: count=%d max=%g", h.Count(), h.Quantile(1))
	}
}

// TestHistogramConcurrentReset mixes writers, quantile readers, bucket
// snapshots and window-style Reset rotation — the access pattern of the
// rolling rate windows and the Prometheus scraper. Run under -race by
// make check; the assertions only require self-consistency (no negative
// or wildly out-of-range values), not linearizable counts.
func TestHistogramConcurrentReset(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	writersDone := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20_000; i++ {
				h.Observe(int64(i%1_000_000 + 1))
			}
		}(g)
	}
	var scrape sync.WaitGroup
	scrape.Add(1)
	go func() { // scraper
		defer scrape.Done()
		for {
			select {
			case <-writersDone:
				return
			default:
			}
			if q := h.Quantile(0.95); q < 0 || q > 1_000_001 {
				t.Errorf("quantile out of range under rotation: %g", q)
				return
			}
			b := h.Buckets()
			var total int64
			for _, c := range b {
				total += c
			}
			if total < 0 {
				t.Errorf("bucket total negative: %d", total)
				return
			}
		}
	}()
	go func() { // rotator: reset windows while writers run
		for {
			select {
			case <-writersDone:
				return
			default:
			}
			time.Sleep(200 * time.Microsecond)
			h.Reset()
		}
	}()
	wg.Wait()
	close(writersDone)
	scrape.Wait()
	h.Reset()
	h.Observe(42)
	if h.Count() != 1 || h.Quantile(1) != 42 {
		t.Fatalf("histogram unusable after rotation storm: count=%d max=%g", h.Count(), h.Quantile(1))
	}
}
