package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock steps time manually for deterministic window tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestRateWindowTotalsAndExpiry(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	w := NewRateWindow(time.Minute, time.Second)
	w.now = clk.now

	w.Add(10)
	clk.advance(30 * time.Second)
	w.Add(5)
	if got := w.Total(time.Minute); got != 15 {
		t.Fatalf("Total(1m) = %d, want 15", got)
	}
	if got := w.Total(10 * time.Second); got != 5 {
		t.Fatalf("Total(10s) = %d, want only the recent 5", got)
	}
	// After the window passes, the old slot must not count.
	clk.advance(45 * time.Second)
	if got := w.Total(time.Minute); got != 5 {
		t.Fatalf("Total(1m) after expiry = %d, want 5", got)
	}
	clk.advance(2 * time.Minute)
	if got := w.Total(time.Minute); got != 0 {
		t.Fatalf("idle window = %d, want 0", got)
	}
}

func TestRateWindowRate(t *testing.T) {
	clk := &fakeClock{t: time.Unix(2000, 0)}
	w := NewRateWindow(time.Minute, time.Second)
	w.now = clk.now
	w.Add(120)
	if got := w.Rate(time.Minute); got != 2 {
		t.Fatalf("Rate(1m) = %g, want 2/s", got)
	}
	if got := w.Rate(0); got != 0 {
		t.Fatalf("Rate(0) = %g, want 0", got)
	}
}

func TestRateWindowSlotReuse(t *testing.T) {
	// Wrapping the ring must zero stale slots, not resurrect them.
	clk := &fakeClock{t: time.Unix(3000, 0)}
	w := NewRateWindow(4*time.Second, time.Second)
	w.now = clk.now
	w.Add(100)
	// Advance exactly one ring length: the writer lands on the same
	// physical slot and must reset it.
	clk.advance(time.Duration(len(w.slots)) * time.Second)
	w.Add(1)
	if got := w.Total(4 * time.Second); got != 1 {
		t.Fatalf("after wrap Total = %d, want 1 (stale slot resurrected)", got)
	}
}

func TestRateWindowConcurrent(t *testing.T) {
	w := NewRateWindow(time.Minute, time.Second)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				w.Add(1)
				if i%100 == 0 {
					_ = w.Rate(time.Minute)
				}
			}
		}()
	}
	wg.Wait()
	if got := w.Total(time.Minute); got != 8000 {
		t.Fatalf("concurrent Total = %d, want 8000", got)
	}
}

func TestHotProgramsTopK(t *testing.T) {
	h := NewHotPrograms(16, time.Hour)
	for i := 0; i < 5; i++ {
		h.Record("hot", 64, 1000)
	}
	h.Record("warm", 8, 2000)
	h.Record("warm", 8, 2000)
	h.Record("cold", 1, 500)

	top := h.TopK(2)
	if len(top) != 2 || top[0].Fingerprint != "hot" || top[1].Fingerprint != "warm" {
		t.Fatalf("TopK(2) = %+v", top)
	}
	if top[0].Runs != 5 || top[0].Slots != 320 {
		t.Errorf("hot row = %+v, want 5 runs / 320 slots", top[0])
	}
	if top[0].P95NS <= 0 {
		t.Errorf("p95 = %g, want > 0", top[0].P95NS)
	}
	if all := h.TopK(0); len(all) != 3 {
		t.Errorf("TopK(0) = %d rows, want all 3", len(all))
	}
}

func TestHotProgramsEviction(t *testing.T) {
	h := NewHotPrograms(3, time.Hour)
	h.Record("a", 1, 1)
	h.Record("a", 1, 1)
	h.Record("b", 1, 1)
	h.Record("b", 1, 1)
	h.Record("c", 1, 1) // coldest
	h.Record("d", 1, 1) // table full: evicts c
	top := h.TopK(0)
	if len(top) != 3 {
		t.Fatalf("table size = %d, want bounded at 3", len(top))
	}
	for _, p := range top {
		if p.Fingerprint == "c" {
			t.Fatalf("coldest survived eviction: %+v", top)
		}
	}
}

func TestHotProgramsRotation(t *testing.T) {
	clk := &fakeClock{t: time.Unix(5000, 0)}
	h := NewHotPrograms(16, time.Minute)
	h.now = clk.now
	h.lastRotate = clk.now()
	for i := 0; i < 8; i++ {
		h.Record("steady", 4, 1000)
	}
	h.Record("oneshot", 4, 1000)

	clk.advance(2 * time.Minute)
	top := h.TopK(0)
	if len(top) != 1 || top[0].Fingerprint != "steady" {
		t.Fatalf("after rotation = %+v, want only steady (oneshot decayed out)", top)
	}
	if top[0].Runs != 4 {
		t.Errorf("steady runs = %d, want halved to 4", top[0].Runs)
	}
	if top[0].P95NS != 0 {
		t.Errorf("p95 after Reset = %g, want 0 (histogram cleared)", top[0].P95NS)
	}
}

func TestHotProgramsConcurrent(t *testing.T) {
	h := NewHotPrograms(32, 10*time.Millisecond) // rotate aggressively mid-test
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Record(fmt.Sprintf("fp%d", i%40), 8, int64(i))
				if i%64 == 0 {
					_ = h.TopK(10)
				}
			}
		}(g)
	}
	wg.Wait()
	if top := h.TopK(10); len(top) > 10 {
		t.Fatalf("TopK(10) returned %d rows", len(top))
	}
}
