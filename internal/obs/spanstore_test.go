package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanStoreByTrace(t *testing.T) {
	st := NewSpanStore("worker-1", 16)
	st.Add(
		RSpan{TraceID: "t1", SpanID: "b", StartUnixNS: 200},
		RSpan{TraceID: "t2", SpanID: "x", StartUnixNS: 50},
		RSpan{TraceID: "t1", SpanID: "a", StartUnixNS: 100},
	)
	got := st.ByTrace("t1")
	if len(got) != 2 || got[0].SpanID != "a" || got[1].SpanID != "b" {
		t.Fatalf("ByTrace(t1) = %+v, want [a b] sorted by start", got)
	}
	if st.ByTrace("missing") != nil {
		t.Error("unknown trace must return nil")
	}
}

func TestSpanStoreEviction(t *testing.T) {
	st := NewSpanStore("w", 4)
	for i := 0; i < 10; i++ {
		st.Add(RSpan{TraceID: "t", SpanID: fmt.Sprintf("s%d", i), StartUnixNS: int64(i)})
	}
	live, dropped := st.Stats()
	if live != 4 || dropped != 6 {
		t.Fatalf("stats = live %d dropped %d, want 4/6", live, dropped)
	}
	got := st.ByTrace("t")
	if len(got) != 4 || got[0].SpanID != "s6" || got[3].SpanID != "s9" {
		t.Fatalf("survivors = %+v, want the 4 newest (s6..s9)", got)
	}
}

func TestSpanStoreDumpEmpty(t *testing.T) {
	st := NewSpanStore("w", 4)
	d := st.Dump("none")
	if d.Spans == nil || len(d.Spans) != 0 {
		t.Fatalf("empty dump must carry [], got %#v", d.Spans)
	}
	if d.Process != "w" || d.TraceID != "none" {
		t.Fatalf("dump identity wrong: %+v", d)
	}
}

func TestSpanStoreConcurrent(t *testing.T) {
	st := NewSpanStore("w", 128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				st.Add(RSpan{TraceID: "t", SpanID: fmt.Sprintf("%d-%d", g, i)})
				if i%32 == 0 {
					_ = st.ByTrace("t")
					_, _ = st.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	live, dropped := st.Stats()
	if live != 128 || live+int(dropped) != 8*200 {
		t.Fatalf("live %d dropped %d, want 128 live and no lost adds", live, dropped)
	}
}

func TestStitchChromeTrace(t *testing.T) {
	base := time.Now().UnixNano()
	procs := []ProcessSpans{
		{Process: "coordinator", Spans: []RSpan{
			{TraceID: "t", SpanID: "root", Name: "proxy", StartUnixNS: base, DurNS: 1_000_000},
			{TraceID: "t", SpanID: "fwd", Parent: "root", Name: "forward", StartUnixNS: base + 100_000, DurNS: 800_000},
		}},
		{Process: "worker http://a", Spans: []RSpan{
			{TraceID: "t", SpanID: "run", Parent: "fwd", Name: "run", StartUnixNS: base + 200_000, DurNS: 500_000},
		}},
	}
	raw, err := StitchChromeTrace("t", procs)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Pid  int            `json:"pid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("stitched output is not valid JSON: %v", err)
	}
	if doc.OtherData["traceId"] != "t" {
		t.Errorf("otherData.traceId = %v", doc.OtherData["traceId"])
	}
	procNames := map[string]int{}
	slices := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				procNames[ev.Args["name"].(string)] = ev.Pid
			}
		case "X":
			slices++
			if ev.Ts < 0 {
				t.Errorf("slice %q has negative ts %v (normalization broken)", ev.Name, ev.Ts)
			}
		}
	}
	if len(procNames) != 2 {
		t.Fatalf("process tracks = %v, want coordinator + worker", procNames)
	}
	if procNames["coordinator"] != 1 {
		t.Errorf("coordinator must be pid 1 (first listed), got %d", procNames["coordinator"])
	}
	if slices != 3 {
		t.Errorf("slices = %d, want 3", slices)
	}
}

func TestAssignTracksNestingAndOverlap(t *testing.T) {
	// parent [0,100], child [10,50] nests; siblings [10,50] and [40,90]
	// overlap without nesting so they must land on different tracks.
	spans := []RSpan{
		{SpanID: "parent", StartUnixNS: 0, DurNS: 100},
		{SpanID: "child", StartUnixNS: 10, DurNS: 40},
		{SpanID: "overlap", StartUnixNS: 40, DurNS: 50},
	}
	tids := assignTracks(spans)
	if tids[0] != tids[1] {
		t.Errorf("nested child must share parent's track: %v", tids)
	}
	if tids[2] == tids[1] {
		t.Errorf("overlapping sibling must not share the child's track: %v", tids)
	}

	// Disjoint spans reuse a track.
	seq := []RSpan{
		{SpanID: "a", StartUnixNS: 0, DurNS: 10},
		{SpanID: "b", StartUnixNS: 20, DurNS: 10},
	}
	tids = assignTracks(seq)
	if tids[0] != tids[1] {
		t.Errorf("disjoint spans should reuse track 1: %v", tids)
	}
}

func TestSpanExport(t *testing.T) {
	tc := NewTraceContext(true)
	sp := StartSpan("req-1")
	start := time.Now().Add(-10 * time.Millisecond)
	sp.PhaseAt("queue_wait", start, 2*time.Millisecond)
	sp.PhaseFull("run", start.Add(2*time.Millisecond), 5*time.Millisecond, "", "feedfeedfeedfeed", nil)
	sp.PhaseFull("chip pe0", start.Add(2*time.Millisecond), 4*time.Millisecond, "run", "", map[string]string{"pe": "0"})
	spans := sp.Export(tc, "upstream", "worker run")
	if len(spans) != 4 {
		t.Fatalf("exported %d spans, want root + 3 phases", len(spans))
	}
	root := spans[0]
	if root.SpanID != tc.SpanID || root.Parent != "upstream" || root.Name != "worker run" {
		t.Fatalf("root wrong: %+v", root)
	}
	byName := map[string]RSpan{}
	for _, s := range spans[1:] {
		byName[s.Name] = s
		if s.TraceID != tc.TraceID {
			t.Errorf("span %q trace id %q", s.Name, s.TraceID)
		}
	}
	if byName["queue_wait"].Parent != root.SpanID {
		t.Errorf("queue_wait parent = %q, want root", byName["queue_wait"].Parent)
	}
	if byName["run"].SpanID != "feedfeedfeedfeed" {
		t.Errorf("pre-assigned span id lost: %q", byName["run"].SpanID)
	}
	if byName["chip pe0"].Parent != "feedfeedfeedfeed" {
		t.Errorf("chip span parent = %q, want the run span", byName["chip pe0"].Parent)
	}
	if byName["chip pe0"].Attrs["pe"] != "0" {
		t.Errorf("attrs lost: %+v", byName["chip pe0"].Attrs)
	}
}

// TestClampToParents: a child span exported by another process can
// overhang its parent (the worker exports after the coordinator's
// forward span closed); the stitcher must trim it into the parent's
// bounds so the flame view nests strictly, without touching the input.
func TestClampToParents(t *testing.T) {
	in := []ProcessSpans{
		{Process: "coord", Spans: []RSpan{
			{TraceID: "t", SpanID: "root", Name: "ingress", StartUnixNS: 1000, DurNS: 1000},
			{TraceID: "t", SpanID: "fwd", Parent: "root", Name: "forward", StartUnixNS: 1100, DurNS: 800},
		}},
		{Process: "worker", Spans: []RSpan{
			// Starts before and ends after the forward span.
			{TraceID: "t", SpanID: "wrk", Parent: "fwd", Name: "run", StartUnixNS: 1050, DurNS: 1000},
			// Nested under the worker root; must be clamped transitively.
			{TraceID: "t", SpanID: "chip", Parent: "wrk", Name: "chip pe0", StartUnixNS: 1060, DurNS: 2000},
			// Orphan parent: left alone.
			{TraceID: "t", SpanID: "lost", Parent: "nowhere", Name: "orphan", StartUnixNS: 1, DurNS: 9999},
		}},
	}
	out := clampToParents(in)
	find := func(procs []ProcessSpans, id string) RSpan {
		for _, p := range procs {
			for _, s := range p.Spans {
				if s.SpanID == id {
					return s
				}
			}
		}
		t.Fatalf("span %s missing", id)
		return RSpan{}
	}
	wrk := find(out, "wrk")
	if wrk.StartUnixNS != 1100 || wrk.StartUnixNS+wrk.DurNS != 1900 {
		t.Fatalf("worker root not clamped to forward [1100,1900]: [%d,%d]", wrk.StartUnixNS, wrk.StartUnixNS+wrk.DurNS)
	}
	chip := find(out, "chip")
	if chip.StartUnixNS < wrk.StartUnixNS || chip.StartUnixNS+chip.DurNS > wrk.StartUnixNS+wrk.DurNS {
		t.Fatalf("chip span escapes clamped parent: [%d,%d]", chip.StartUnixNS, chip.StartUnixNS+chip.DurNS)
	}
	if lost := find(out, "lost"); lost.StartUnixNS != 1 || lost.DurNS != 9999 {
		t.Fatalf("orphan span was clamped: %+v", lost)
	}
	// The caller's slices are untouched.
	if orig := find(in, "wrk"); orig.StartUnixNS != 1050 || orig.DurNS != 1000 {
		t.Fatalf("clampToParents mutated its input: %+v", orig)
	}
}
