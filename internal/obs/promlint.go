package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// LintPromText validates a Prometheus text-exposition document against
// the 0.0.4 grammar plus the histogram invariants scrapers rely on:
//
//   - every line is a # HELP / # TYPE comment, a sample, or blank;
//   - metric and label names match their grammars, label values are
//     properly quoted, sample values parse as floats (incl. +Inf/NaN);
//   - at most one TYPE per family, declared before its samples, with a
//     known type;
//   - a histogram family has _bucket samples with non-decreasing `le`
//     bounds and non-decreasing cumulative counts per label set, ends
//     with le="+Inf", and its _count equals the +Inf bucket.
//
// It is the promtext gate in CI (internal/obs/promlint_test.go and the
// cluster e2e) — a dependency-free stand-in for promtool check metrics.
func LintPromText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	types := map[string]string{} // family → declared type
	sampled := map[string]bool{} // family → sample seen
	type histState struct {
		lastLE  float64
		lastCum float64
		infCum  float64
		sawInf  bool
	}
	hists := map[string]*histState{} // family+labelsig → bucket state
	counts := map[string]float64{}   // family+labelsig → _count value
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "#") {
			fields := strings.Fields(trimmed)
			if len(fields) < 2 {
				continue // free-form comment
			}
			switch fields[1] {
			case "HELP":
				if len(fields) < 3 || !validPromName(fields[2]) {
					return fmt.Errorf("line %d: malformed HELP comment", lineNo)
				}
			case "TYPE":
				if len(fields) != 4 || !validPromName(fields[2]) {
					return fmt.Errorf("line %d: malformed TYPE comment", lineNo)
				}
				name, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if sampled[name] {
					return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				types[name] = typ
			}
			continue
		}
		name, labels, value, err := parsePromSample(trimmed)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		family := histFamily(name, types)
		sampled[family] = true
		sampled[name] = true
		if types[family] == "histogram" {
			sig := family + labelSignature(labels, "le")
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: %s without an le label", lineNo, name)
				}
				bound := math.Inf(1)
				if le != "+Inf" {
					bound, err = strconv.ParseFloat(le, 64)
					if err != nil {
						return fmt.Errorf("line %d: bad le %q: %w", lineNo, le, err)
					}
				}
				st := hists[sig]
				if st == nil {
					st = &histState{lastLE: math.Inf(-1)}
					hists[sig] = st
				}
				if bound < st.lastLE {
					return fmt.Errorf("line %d: %s le %q out of order", lineNo, name, le)
				}
				if value < st.lastCum {
					return fmt.Errorf("line %d: %s cumulative count decreased", lineNo, name)
				}
				st.lastLE, st.lastCum = bound, value
				if le == "+Inf" {
					st.sawInf, st.infCum = true, value
				}
			case strings.HasSuffix(name, "_count"):
				counts[sig] = value
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for sig, st := range hists {
		if !st.sawInf {
			return fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", sig)
		}
		if c, ok := counts[sig]; ok && c != st.infCum {
			return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", sig, c, st.infCum)
		}
	}
	return nil
}

// histFamily strips a histogram-series suffix when the base family is
// declared as a histogram, so _bucket/_sum/_count samples attach to it.
func histFamily(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if types[base] == "histogram" {
				return base
			}
		}
	}
	return name
}

// labelSignature renders a label set minus one key, for grouping the
// bucket series of one histogram child.
func labelSignature(labels map[string]string, except string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != except {
			keys = append(keys, k)
		}
	}
	sortStrings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString("," + k + "=" + labels[k])
	}
	return sb.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// parsePromSample parses `name[{labels}] value [timestamp]`.
func parsePromSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		rest = rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, " \t")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("unterminated label set")
			}
			key := strings.TrimSpace(rest[:eq])
			if !validLabelName(key) {
				return "", nil, 0, fmt.Errorf("bad label name %q", key)
			}
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, "\"") {
				return "", nil, 0, fmt.Errorf("label %s value not quoted", key)
			}
			val, n, verr := scanQuoted(rest)
			if verr != nil {
				return "", nil, 0, verr
			}
			labels[key] = val
			rest = rest[n:]
			rest = strings.TrimLeft(rest, " \t")
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("sample %q has no value", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if !validPromName(name) {
		return "", nil, 0, fmt.Errorf("bad metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q needs `value [timestamp]`", line)
	}
	value, err = parsePromFloat(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q: %w", fields[0], err)
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// scanQuoted reads a double-quoted, backslash-escaped string at the
// start of s, returning the unescaped value and bytes consumed.
func scanQuoted(s string) (string, int, error) {
	var sb strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape in label value")
			}
			i++
			switch s[i] {
			case 'n':
				sb.WriteByte('\n')
			default:
				sb.WriteByte(s[i])
			}
		case '"':
			return sb.String(), i + 1, nil
		default:
			sb.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		letter := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
