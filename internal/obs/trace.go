package obs

import (
	"encoding/json"
	"fmt"

	"hyperap/internal/arch"
)

// TraceMeta labels a Chrome trace export.
type TraceMeta struct {
	// Program names the traced program (file name or fingerprint); it
	// becomes the trace's top-level metadata.
	Program string
	// CyclePeriodNS converts simulated cycles to trace time (0 = 1 ns
	// per cycle).
	CyclePeriodNS float64
	// TraceID ties the chip timeline to its distributed trace (empty when
	// the run was not traced end to end).
	TraceID string
}

// ChromeTrace renders simulator trace events as Chrome trace-event JSON
// (the "JSON Array with metadata" flavour), loadable by Perfetto
// (ui.perfetto.dev) and chrome://tracing. Every subarray becomes a
// thread inside its bank's process, each instruction a complete ("X")
// slice spanning its cycle cost on the simulated clock, with the tag
// population emitted as a per-PE counter track; chip-level instructions
// land on a dedicated "controller" process. Time is the simulated
// timeline (CumCycles × CyclePeriodNS), not host wall time, so PE
// occupancy and pipeline phases read directly off the trace.
func ChromeTrace(events []arch.TraceEvent, meta TraceMeta) ([]byte, error) {
	period := meta.CyclePeriodNS
	if period <= 0 {
		period = 1
	}
	// Chrome trace timestamps are microseconds.
	usPerCycle := period / 1e3

	var out []map[string]any
	type track struct{ pid, tid int }
	seen := map[track]bool{}
	procNamed := map[int]bool{}
	addMeta := func(pid, tid int, bank, sub, pe int) {
		if !procNamed[pid] {
			procNamed[pid] = true
			name := "controller"
			if pid > 0 {
				name = fmt.Sprintf("bank %d", bank)
			}
			out = append(out, map[string]any{
				"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
				"args": map[string]any{"name": name},
			})
		}
		if t := (track{pid, tid}); !seen[t] {
			seen[t] = true
			name := "top-level controller"
			if pid > 0 {
				name = fmt.Sprintf("subarray %d (PE %d)", sub, pe)
			}
			out = append(out, map[string]any{
				"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
				"args": map[string]any{"name": name},
			})
		}
	}

	for _, ev := range events {
		pid, tid := 0, 0
		if ev.PE >= 0 {
			pid, tid = ev.Bank+1, ev.PE+1
		}
		addMeta(pid, tid, ev.Bank, ev.Subarray, ev.PE)
		start := float64(ev.CumCycles-int64(ev.Cycles)) * usPerCycle
		dur := float64(ev.Cycles) * usPerCycle
		args := map[string]any{
			"pc":        ev.PC,
			"seq":       ev.Seq,
			"cycles":    ev.Cycles,
			"energy_fJ": ev.EnergyJ * 1e15,
		}
		if ev.TaggedRows >= 0 {
			args["tagged_rows"] = ev.TaggedRows
		}
		out = append(out, map[string]any{
			"ph": "X", "name": ev.Instr.Op.String(), "cat": "instr",
			"pid": pid, "tid": tid, "ts": start, "dur": dur, "args": args,
		})
		if ev.TaggedRows >= 0 {
			out = append(out, map[string]any{
				"ph": "C", "name": fmt.Sprintf("tagged rows PE %d", ev.PE),
				"pid": pid, "tid": tid, "ts": start + dur,
				"args": map[string]any{"rows": ev.TaggedRows},
			})
		}
	}
	other := map[string]any{
		"program":         meta.Program,
		"cyclePeriod_ns":  period,
		"timeUnit":        "simulated cycles scaled by cyclePeriod_ns",
		"exportedBy":      "hyperap internal/obs",
		"openWith":        "https://ui.perfetto.dev",
		"traceEventCount": len(events),
	}
	if meta.TraceID != "" {
		other["traceId"] = meta.TraceID
	}
	return json.MarshalIndent(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ns",
		"otherData":       other,
	}, "", " ")
}
