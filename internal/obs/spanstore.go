package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// RSpan is one recorded span: the wall-clock interval a named piece of a
// request spent in one process, tied into its distributed trace by
// (TraceID, SpanID, Parent). Every process in the cluster records RSpans
// into a bounded SpanStore and serves them at GET /v1/trace/{trace-id};
// the coordinator stitches the per-process sets into a single Perfetto
// timeline.
type RSpan struct {
	TraceID     string            `json:"traceId"`
	SpanID      string            `json:"spanId"`
	Parent      string            `json:"parentId,omitempty"`
	Name        string            `json:"name"`
	StartUnixNS int64             `json:"startUnixNs"`
	DurNS       int64             `json:"durNs"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// SpanStore is a bounded in-memory ring buffer of recorded spans. When
// the buffer is full the oldest spans are overwritten (recent traces are
// the ones being debugged; a store can never grow without bound on a
// long-lived server). All methods are safe for concurrent use.
type SpanStore struct {
	process string

	mu      sync.Mutex
	buf     []RSpan
	head    int // next write position
	n       int // live spans (== len(buf) once wrapped)
	dropped int64
}

// DefaultSpanStoreCap is the default ring capacity (spans, not traces).
const DefaultSpanStoreCap = 8192

// NewSpanStore builds a store identified by a process name (what the
// stitched timeline labels this node's track). capacity <= 0 uses the
// default.
func NewSpanStore(process string, capacity int) *SpanStore {
	if capacity <= 0 {
		capacity = DefaultSpanStoreCap
	}
	return &SpanStore{process: process, buf: make([]RSpan, capacity)}
}

// Process returns the store's process label.
func (st *SpanStore) Process() string { return st.process }

// Add records spans, overwriting the oldest entries when full.
func (st *SpanStore) Add(spans ...RSpan) {
	st.mu.Lock()
	for _, sp := range spans {
		if st.n == len(st.buf) {
			st.dropped++
		} else {
			st.n++
		}
		st.buf[st.head] = sp
		st.head = (st.head + 1) % len(st.buf)
	}
	st.mu.Unlock()
}

// ByTrace returns every live span of one trace, ordered by start time.
func (st *SpanStore) ByTrace(traceID string) []RSpan {
	st.mu.Lock()
	var out []RSpan
	start := (st.head - st.n + len(st.buf)) % len(st.buf)
	for i := 0; i < st.n; i++ {
		sp := st.buf[(start+i)%len(st.buf)]
		if sp.TraceID == traceID {
			out = append(out, sp)
		}
	}
	st.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartUnixNS < out[j].StartUnixNS })
	return out
}

// Stats reports the live span count and how many spans eviction has
// overwritten since startup.
func (st *SpanStore) Stats() (live int, dropped int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.n, st.dropped
}

// TraceDump is the GET /v1/trace/{id} response body: one process's spans
// for one trace.
type TraceDump struct {
	TraceID string  `json:"traceId"`
	Process string  `json:"process"`
	Spans   []RSpan `json:"spans"`
}

// Dump renders one trace's spans for the /v1/trace endpoint.
func (st *SpanStore) Dump(traceID string) TraceDump {
	spans := st.ByTrace(traceID)
	if spans == nil {
		spans = []RSpan{}
	}
	return TraceDump{TraceID: traceID, Process: st.process, Spans: spans}
}

// ProcessSpans is one node's contribution to a stitched timeline.
type ProcessSpans struct {
	Process string  `json:"process"`
	Spans   []RSpan `json:"spans"`
}

// StitchChromeTrace renders the per-process span sets of one trace as a
// single Chrome trace-event JSON document loadable at ui.perfetto.dev:
// one process track per node (in the order given — put the coordinator
// first), spans as complete ("X") slices on wall-clock time normalized
// to the earliest span, with span/parent ids and attributes in the
// args. Within a process, overlapping sibling spans (e.g. the per-PE
// chip spans under one run span) are spread across thread tracks so
// every slice nests visually inside its container.
func StitchChromeTrace(traceID string, procs []ProcessSpans) ([]byte, error) {
	procs = clampToParents(procs)
	var t0 int64 = -1
	total := 0
	for _, p := range procs {
		total += len(p.Spans)
		for _, sp := range p.Spans {
			if t0 < 0 || sp.StartUnixNS < t0 {
				t0 = sp.StartUnixNS
			}
		}
	}
	if t0 < 0 {
		t0 = 0
	}
	var out []map[string]any
	for pi, p := range procs {
		pid := pi + 1
		out = append(out, map[string]any{
			"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
			"args": map[string]any{"name": p.Process},
		})
		spans := append([]RSpan(nil), p.Spans...)
		sort.SliceStable(spans, func(i, j int) bool {
			if spans[i].StartUnixNS != spans[j].StartUnixNS {
				return spans[i].StartUnixNS < spans[j].StartUnixNS
			}
			// Longer span first so a child sharing its parent's start
			// lands above it on the same track.
			return spans[i].DurNS > spans[j].DurNS
		})
		tids := assignTracks(spans)
		named := map[int]bool{}
		for si, sp := range spans {
			tid := tids[si]
			if !named[tid] {
				named[tid] = true
				out = append(out, map[string]any{
					"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
					"args": map[string]any{"name": fmt.Sprintf("track %d", tid)},
				})
			}
			args := map[string]any{"spanId": sp.SpanID}
			if sp.Parent != "" {
				args["parentId"] = sp.Parent
			}
			for k, v := range sp.Attrs {
				args[k] = v
			}
			out = append(out, map[string]any{
				"ph": "X", "name": sp.Name, "cat": "span",
				"pid": pid, "tid": tid,
				"ts":   float64(sp.StartUnixNS-t0) / 1e3,
				"dur":  float64(sp.DurNS) / 1e3,
				"args": args,
			})
		}
	}
	return json.MarshalIndent(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ms",
		"otherData": map[string]any{
			"traceId":    traceID,
			"spanCount":  total,
			"processes":  len(procs),
			"exportedBy": "hyperap internal/obs stitcher",
			"openWith":   "https://ui.perfetto.dev",
		},
	}, "", " ")
}

// clampToParents fits every span inside its parent's interval without
// mutating the caller's slices. Spans arrive from independent processes
// whose exports race the parent's completion (a worker writes its
// response bytes — ending the coordinator's forward span — before it
// exports its own root span), so a child can overhang its parent by the
// export latency. The flame view needs strict nesting, so the stitcher
// trims children to their parents rather than asking every process for
// a synchronized clock.
func clampToParents(procs []ProcessSpans) []ProcessSpans {
	out := make([]ProcessSpans, len(procs))
	index := map[string]*RSpan{}
	for i, p := range procs {
		out[i] = ProcessSpans{Process: p.Process, Spans: append([]RSpan(nil), p.Spans...)}
		for j := range out[i].Spans {
			sp := &out[i].Spans[j]
			if sp.SpanID != "" {
				index[sp.SpanID] = sp
			}
		}
	}
	children := map[string][]*RSpan{}
	var roots []*RSpan
	for i := range out {
		for j := range out[i].Spans {
			sp := &out[i].Spans[j]
			if sp.Parent != "" && index[sp.Parent] != nil && index[sp.Parent] != sp {
				children[sp.Parent] = append(children[sp.Parent], sp)
				continue
			}
			roots = append(roots, sp)
		}
	}
	visited := map[*RSpan]bool{}
	var clamp func(parent *RSpan)
	clamp = func(parent *RSpan) {
		if visited[parent] {
			return // malformed parent cycle; stop rather than recurse forever
		}
		visited[parent] = true
		pEnd := parent.StartUnixNS + parent.DurNS
		for _, ch := range children[parent.SpanID] {
			if ch.StartUnixNS < parent.StartUnixNS {
				ch.StartUnixNS = parent.StartUnixNS
			}
			if end := ch.StartUnixNS + ch.DurNS; end > pEnd {
				ch.DurNS = pEnd - ch.StartUnixNS
				if ch.DurNS < 0 {
					ch.DurNS = 0
				}
			}
			clamp(ch)
		}
	}
	for _, r := range roots {
		clamp(r)
	}
	return out
}

// assignTracks places start-sorted spans onto thread tracks so that any
// two spans sharing a track strictly nest (child inside parent) or are
// disjoint in time — the invariant Chrome's flame view needs to render
// "X" slices as a stack. Each span takes the lowest track whose current
// innermost open span contains it (or has ended).
func assignTracks(spans []RSpan) []int {
	type open struct{ end int64 }
	var tracks [][]open // per track: stack of open spans
	tids := make([]int, len(spans))
	for i, sp := range spans {
		start, end := sp.StartUnixNS, sp.StartUnixNS+sp.DurNS
		placed := false
		for t := range tracks {
			stack := tracks[t]
			// Pop spans that ended at or before this start.
			for len(stack) > 0 && stack[len(stack)-1].end <= start {
				stack = stack[:len(stack)-1]
			}
			if len(stack) == 0 || stack[len(stack)-1].end >= end {
				tracks[t] = append(stack, open{end})
				tids[i] = t + 1
				placed = true
				break
			}
			tracks[t] = stack
		}
		if !placed {
			tracks = append(tracks, []open{{end}})
			tids[i] = len(tracks)
		}
	}
	return tids
}
