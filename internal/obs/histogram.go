// Package obs is the observability layer shared by the simulator, the
// batch engine and hyperap-serve: log-bucketed latency histograms with
// percentile estimation, request-scoped spans for structured logging,
// and a Chrome-trace/Perfetto exporter for simulator trace events
// (DESIGN.md §9).
package obs

import (
	"math"
	mbits "math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of power-of-two histogram buckets. Bucket 0
// counts observations v <= 1; bucket i (i >= 1) counts
// 2^(i-1) < v <= 2^i. 63 doublings cover the whole non-negative int64
// range, so nanosecond latencies from sub-nanosecond to ~292 years land
// in a fixed-size array.
const NumBuckets = 64

// Histogram is a concurrency-safe log-bucketed histogram of int64
// observations (by convention nanoseconds). All mutation is atomic —
// any number of goroutines may Observe while others read quantiles —
// and readers see each counter atomically (a summary taken mid-update
// may be off by the in-flight observations, which is fine for metrics).
// The zero value is NOT ready to use; construct with NewHistogram.
type Histogram struct {
	counts [NumBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // valid only when count > 0
	max    atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// BucketIndex returns the bucket an observation lands in.
func BucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	return mbits.Len64(uint64(v - 1))
}

// BucketUpperBound returns the inclusive upper bound of bucket i.
func BucketUpperBound(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return 1 << uint(i)
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[BucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Buckets returns an atomic-per-bucket snapshot of the bucket counts.
// Concurrent Observes may straddle the copy (an observation appearing in
// count but not yet in its bucket, or vice versa), so exposition code
// derives totals from this snapshot rather than mixing it with Count.
func (h *Histogram) Buckets() [NumBuckets]int64 {
	var out [NumBuckets]int64
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Reset zeroes the histogram for window rotation. Reset racing Observe
// is safe (all fields are atomics) but not linearizable: an in-flight
// observation may survive partially (e.g. counted in sum but not count).
// Rolling-window rotation tolerates that — the next window's data
// dominates within one rotation period.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket where the rank q·count falls: a rank landing exactly
// on a bucket's cumulative count returns that bucket's upper bound
// exactly (so observations placed at bucket edges reproduce themselves).
// The estimate is clamped to the observed [min, max]. Returns 0 on an
// empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(n)
	if target < 1 {
		target = 1 // any rank below the first observation is the first
	}
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			lower := 0.0
			if i > 0 {
				lower = float64(BucketUpperBound(i - 1))
			}
			upper := float64(BucketUpperBound(i))
			return h.clamp(lower + (upper-lower)*(target-float64(cum))/float64(c))
		}
		cum += c
	}
	return h.clamp(float64(h.max.Load()))
}

func (h *Histogram) clamp(v float64) float64 {
	if mn := h.min.Load(); mn != math.MaxInt64 && v < float64(mn) {
		v = float64(mn)
	}
	if mx := h.max.Load(); v > float64(mx) {
		v = float64(mx)
	}
	return v
}

// Summary renders the histogram for an expvar map (expvar.Func): count,
// sum/min/max/mean and the p50/p95/p99 latency percentiles, all in
// nanoseconds.
func (h *Histogram) Summary() any {
	n := h.count.Load()
	s := map[string]any{"count": n}
	if n == 0 {
		return s
	}
	s["sum_ns"] = h.sum.Load()
	s["min_ns"] = h.min.Load()
	s["max_ns"] = h.max.Load()
	s["mean_ns"] = float64(h.sum.Load()) / float64(n)
	s["p50_ns"] = h.Quantile(0.50)
	s["p95_ns"] = h.Quantile(0.95)
	s["p99_ns"] = h.Quantile(0.99)
	return s
}
