package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"sync"
	"time"
)

// NewRequestID returns a 16-hex-character random request identifier.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand does not fail on supported platforms; a fixed id
		// beats crashing the request path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Span is one request's phase-timing record: a request id, a start time
// and an ordered list of named phase durations (compile, coalesce,
// queue_wait, run, fanout, ...). Methods are nil-safe so code paths
// without an active span need no guards, and mutation is locked so a
// handler and the coalescer goroutine may both record phases.
type Span struct {
	ID    string
	Start time.Time

	mu     sync.Mutex
	phases []phase
}

type phase struct {
	name string
	dur  time.Duration
}

// StartSpan begins a span now.
func StartSpan(id string) *Span {
	return &Span{ID: id, Start: time.Now()}
}

// Phase records a named phase duration.
func (s *Span) Phase(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.phases = append(s.phases, phase{name, d})
	s.mu.Unlock()
}

// Time starts a phase timer; calling the returned func records the
// elapsed phase: defer sp.Time("compile")().
func (s *Span) Time(name string) func() {
	if s == nil {
		return func() {}
	}
	start := time.Now()
	return func() { s.Phase(name, time.Since(start)) }
}

// Attrs renders the span for slog: the request id, the elapsed total and
// a "phases" group with one duration per recorded phase.
func (s *Span) Attrs() []slog.Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	ph := make([]any, 0, len(s.phases))
	for _, p := range s.phases {
		ph = append(ph, slog.Duration(p.name, p.dur))
	}
	s.mu.Unlock()
	return []slog.Attr{
		slog.String("req_id", s.ID),
		slog.Duration("total", time.Since(s.Start)),
		slog.Group("phases", ph...),
	}
}

type spanKey struct{}

// WithSpan attaches a span to a context (the request middleware does this
// once per request).
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the context's span, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
