package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"sync"
	"time"
)

// NewRequestID returns a 16-hex-character random request identifier.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand does not fail on supported platforms; a fixed id
		// beats crashing the request path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Span is one request's phase-timing record: a request id, a start time
// and an ordered list of named phases (compile, coalesce, queue_wait,
// run, fanout, ...), each with its wall-clock start so the record
// doubles as a set of child spans for the distributed trace (Export).
// Methods are nil-safe so code paths without an active span need no
// guards, and mutation is locked so a handler and the coalescer
// goroutine may both record phases.
type Span struct {
	ID    string
	Start time.Time

	mu     sync.Mutex
	phases []phase
}

type phase struct {
	name  string
	start time.Time
	dur   time.Duration
	// parent names an earlier phase this one nests under ("" = the
	// request span itself); spanID pre-assigns the exported span id
	// (cross-process parenting needs the id before the remote side
	// records); attrs ride into the exported span.
	parent string
	spanID string
	attrs  map[string]string
}

// StartSpan begins a span now.
func StartSpan(id string) *Span {
	return &Span{ID: id, Start: time.Now()}
}

// Phase records a named phase that just elapsed (start = now - d).
func (s *Span) Phase(name string, d time.Duration) {
	s.PhaseAt(name, time.Now().Add(-d), d)
}

// PhaseAt records a named phase with an explicit wall-clock start.
func (s *Span) PhaseAt(name string, start time.Time, d time.Duration) {
	s.record(phase{name: name, start: start, dur: d})
}

// PhaseFull records a phase with full control: an optional parent phase
// name (the most recent phase with that name becomes the exported
// parent), an optional pre-assigned span id, and attributes.
func (s *Span) PhaseFull(name string, start time.Time, d time.Duration, parent, spanID string, attrs map[string]string) {
	s.record(phase{name: name, start: start, dur: d, parent: parent, spanID: spanID, attrs: attrs})
}

func (s *Span) record(p phase) {
	if s == nil {
		return
	}
	if p.dur < 0 {
		p.dur = 0
	}
	s.mu.Lock()
	s.phases = append(s.phases, p)
	s.mu.Unlock()
}

// Time starts a phase timer; calling the returned func records the
// elapsed phase: defer sp.Time("compile")().
func (s *Span) Time(name string) func() {
	if s == nil {
		return func() {}
	}
	start := time.Now()
	return func() { s.PhaseAt(name, start, time.Since(start)) }
}

// Attrs renders the span for slog: the request id, the elapsed total and
// a "phases" group with one duration per recorded phase.
func (s *Span) Attrs() []slog.Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	ph := make([]any, 0, len(s.phases))
	for _, p := range s.phases {
		ph = append(ph, slog.Duration(p.name, p.dur))
	}
	s.mu.Unlock()
	return []slog.Attr{
		slog.String("req_id", s.ID),
		slog.Duration("total", time.Since(s.Start)),
		slog.Group("phases", ph...),
	}
}

// Export renders the span as distributed-trace spans: one root span
// named name (span id tc.SpanID, parent parent — the upstream caller's
// span id, empty at the trace root) covering Start..now, plus one child
// span per recorded phase. A phase with a parent name nests under the
// most recent earlier phase of that name; others hang off the root.
func (s *Span) Export(tc TraceContext, parent, name string) []RSpan {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	phases := append([]phase(nil), s.phases...)
	s.mu.Unlock()
	root := RSpan{
		TraceID:     tc.TraceID,
		SpanID:      tc.SpanID,
		Parent:      parent,
		Name:        name,
		StartUnixNS: s.Start.UnixNano(),
		DurNS:       time.Since(s.Start).Nanoseconds(),
		Attrs:       map[string]string{"req_id": s.ID},
	}
	out := make([]RSpan, 0, len(phases)+1)
	out = append(out, root)
	lastByName := map[string]string{} // phase name → exported span id
	for _, p := range phases {
		id := p.spanID
		if id == "" {
			id = NewSpanID()
		}
		par := tc.SpanID
		if p.parent != "" {
			if pid, ok := lastByName[p.parent]; ok {
				par = pid
			}
		}
		out = append(out, RSpan{
			TraceID:     tc.TraceID,
			SpanID:      id,
			Parent:      par,
			Name:        p.name,
			StartUnixNS: p.start.UnixNano(),
			DurNS:       p.dur.Nanoseconds(),
			Attrs:       p.attrs,
		})
		lastByName[p.name] = id
	}
	return out
}

type spanKey struct{}

// WithSpan attaches a span to a context (the request middleware does this
// once per request).
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the context's span, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
