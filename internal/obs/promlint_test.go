package obs

import (
	"bytes"
	"expvar"
	"strings"
	"testing"
)

// TestPromRegistryPassesLint is the promtext gate: a registry exercising
// every family kind — expvar-walked counters, labeled vecs, gauges and a
// native histogram — must render text that satisfies the exposition
// grammar and histogram invariants. The cluster e2e runs the same linter
// against the live /metrics/prometheus endpoints.
func TestPromRegistryPassesLint(t *testing.T) {
	reg := NewPromRegistry()
	m := new(expvar.Map).Init()
	m.Add("cache_hits", 17)
	m.AddFloat("healthy_pe_fraction", 0.96)
	sub := new(expvar.Map).Init()
	sub.Add("run 200", 5)
	sub.Add("run 503", 1)
	m.Set("requests_by_status", sub)
	reg.RegisterExpvarMap("hyperap_", m, map[string]bool{}, map[string]bool{})

	reg.Gauge("hyperap_request_rate_1m", "requests per second over the last minute", func() float64 { return 3.5 })
	reg.GaugeVec("hyperap_hot_program_runs", "runs per hot program", func() []PromSample {
		return []PromSample{
			{Labels: []PromLabel{{"fingerprint", "ab\"cd\\ef"}}, Value: 12},
			{Labels: []PromLabel{{"fingerprint", "012345"}}, Value: 40},
		}
	})

	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000)
	}
	reg.Histogram("hyperap_request_duration_ns", "request latency", h)

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := LintPromText(strings.NewReader(text)); err != nil {
		t.Fatalf("registry output fails lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# TYPE hyperap_cache_hits_total counter",
		"hyperap_cache_hits_total 17",
		"hyperap_requests_by_status_total{key=\"run 200\"} 5",
		"# TYPE hyperap_request_duration_ns histogram",
		"hyperap_request_duration_ns_bucket{le=\"+Inf\"} 1000",
		"hyperap_request_duration_ns_count 1000",
		"hyperap_hot_program_runs{fingerprint=\"ab\\\"cd\\\\ef\"} 12",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q\n%s", want, text)
		}
	}
}

func TestLintRejectsBadDocs(t *testing.T) {
	cases := map[string]string{
		"bad metric name":  "0bad_name 1\n",
		"unquoted label":   "m{l=v} 1\n",
		"bad value":        "m notafloat\n",
		"unknown type":     "# TYPE m widget\n",
		"type after use":   "m 1\n# TYPE m counter\n",
		"duplicate type":   "# TYPE m counter\n# TYPE m counter\n",
		"le out of order":  "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n",
		"cum decreases":    "# TYPE h histogram\nh_bucket{le=\"5\"} 3\nh_bucket{le=\"10\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
		"missing inf":      "# TYPE h histogram\nh_bucket{le=\"5\"} 3\nh_count 3\n",
		"count mismatch":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 4\n",
		"dangling escape":  "m{l=\"x\\\n",
		"unterminated set": "m{l=\"x\" 1\n",
	}
	for name, doc := range cases {
		if err := LintPromText(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: lint accepted\n%s", name, doc)
		}
	}
}

func TestLintAcceptsEdgeCases(t *testing.T) {
	doc := strings.Join([]string{
		"# plain comment, not HELP/TYPE",
		"",
		"# HELP m a help string with spaces",
		"# TYPE m counter",
		"m 1",
		"with_timestamp 2 1712345678901",
		"infinite +Inf",
		"not_a_number NaN",
		"labeled{a=\"x\",b=\"esc\\\"aped\"} 3.5",
		// Two histogram children split by an extra label: per-child
		// invariants must be tracked separately.
		"# TYPE h histogram",
		"h_bucket{node=\"a\",le=\"1\"} 1",
		"h_bucket{node=\"a\",le=\"+Inf\"} 2",
		"h_count{node=\"a\"} 2",
		"h_bucket{node=\"b\",le=\"1\"} 5",
		"h_bucket{node=\"b\",le=\"+Inf\"} 9",
		"h_count{node=\"b\"} 9",
	}, "\n") + "\n"
	if err := LintPromText(strings.NewReader(doc)); err != nil {
		t.Fatalf("edge-case doc rejected: %v", err)
	}
}

func TestInjectPromLabel(t *testing.T) {
	cases := [][2]string{
		{"m 1", "m{node=\"http://a\"} 1"},
		{"m{k=\"v\"} 2", "m{k=\"v\",node=\"http://a\"} 2"},
		{"m{} 3", "m{node=\"http://a\"} 3"},
		{"# HELP m x", "# HELP m x"},
		{"", ""},
	}
	for _, c := range cases {
		if got := InjectPromLabel(c[0], "node", "http://a"); got != c[1] {
			t.Errorf("InjectPromLabel(%q) = %q, want %q", c[0], got, c[1])
		}
	}
	// Injected output must still lint.
	doc := "# TYPE m counter\n" + InjectPromLabel("m 1", "node", "http://a\\b") + "\n"
	if err := LintPromText(strings.NewReader(doc)); err != nil {
		t.Fatalf("injected line fails lint: %v\n%s", err, doc)
	}
}

func TestPromRegistryDuplicatePanics(t *testing.T) {
	reg := NewPromRegistry()
	reg.Counter("dup_total", "", func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Error("duplicate family name must panic")
		}
	}()
	reg.Counter("dup_total", "", func() float64 { return 0 })
}

func TestHistogramExpositionSnapshotConsistent(t *testing.T) {
	// _count must equal the +Inf bucket even while writers race the
	// scrape (the lint's strictest invariant).
	h := NewHistogram()
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				h.Observe(12345)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := writeHistogram(&buf, "race_hist", h); err != nil {
			t.Fatal(err)
		}
		doc := "# TYPE race_hist histogram\n" + buf.String()
		if err := LintPromText(strings.NewReader(doc)); err != nil {
			t.Fatalf("scrape %d fails lint under concurrent writes: %v\n%s", i, err, doc)
		}
	}
	close(done)
}
