package lang

import "testing"

// TestExprLineAllNodes covers line propagation for every expression kind.
func TestExprLineAllNodes(t *testing.T) {
	prog, err := Parse(`
		struct S { unsigned int(4) w[2]; }
		unsigned int(4) f(unsigned int(4) v){ return v; }
		unsigned int(4) main(struct S s, bool p) {
			unsigned int(4) a;
			a = 3;
			s.w[1] = f(a) + (-a);
			if (p == true) { a = s.w[1]; } else { a = ~a; }
			return a;
		}`)
	if err != nil {
		t.Fatal(err)
	}
	var walkStmt func(s Stmt)
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		if e == nil {
			return
		}
		if ExprLine(e) <= 0 {
			t.Errorf("%T has no line", e)
		}
		switch x := e.(type) {
		case *Binary:
			walkExpr(x.L)
			walkExpr(x.R)
		case *Unary:
			walkExpr(x.X)
		case *Call:
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *Index:
			walkExpr(x.X)
			walkExpr(x.IndexExpr)
		case *Member:
			walkExpr(x.X)
		}
	}
	walkStmt = func(s Stmt) {
		switch st := s.(type) {
		case *Block:
			for _, inner := range st.Stmts {
				walkStmt(inner)
			}
		case *Decl:
			walkExpr(st.Init)
		case *Assign:
			walkExpr(st.Target)
			walkExpr(st.Value)
		case *If:
			walkExpr(st.Cond)
			walkStmt(st.Then)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *For:
			walkStmt(st.Init)
			walkExpr(st.Cond)
			walkStmt(st.Post)
			walkStmt(st.Body)
		case *Return:
			walkExpr(st.Value)
		}
	}
	for _, fn := range prog.Funcs {
		walkStmt(fn.Body)
	}
}

// TestParseForLoopVariants covers for-loop init forms and struct-typed
// declarations inside functions.
func TestParseForLoopVariants(t *testing.T) {
	_, err := Parse(`
		struct P { bool b; }
		bool main(unsigned int(4) a) {
			struct P p;
			unsigned int(4) i;
			for (i = 0; i < 4; i = i + 1) {
				p.b = a > i;
			}
			return p.b;
		}`)
	if err != nil {
		t.Fatal(err)
	}
}

// TestParseMoreErrors exercises error branches across the parser.
func TestParseMoreErrors(t *testing.T) {
	srcs := []string{
		`unsigned main(){ return 0; }`,                         // missing int
		`int main(){ return 0; }`,                              // missing width
		`int(x) main(){ return 0; }`,                           // non-numeric width
		`struct { bool x; } main(){ return 0; }`,               // nameless struct type
		`bool main(){ struct Q q[x]; return true; }`,           // bad array len
		`struct A { bool x[0]; } bool main(){ return true; }`,  // zero-length field
		`struct A { bool x } bool main(){ return true; }`,      // missing semicolon
		`bool main(){ for (bool i = 0; i; ) {} return true; }`, // malformed for
		`bool main(){ if true { } return true; }`,              // missing paren
		`bool main(){ a. = 1; return true; }`,                  // bad member
		`bool main(){ a[1 = 1; return true; }`,                 // unclosed index
		`bool main(){ x = f(1,; return true; }`,                // bad call args
		`bool main(unsigned int(4) a,){ return true; }`,        // trailing comma
		`bool f(){ return true; } bool f2(){ return f( }`,      // EOF in call
		`bool main(){ return (1 + ; }`,                         // EOF in paren
	}
	for i, src := range srcs {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: expected parse error for %q", i, src)
		}
	}
}

// TestLexLineColumns verifies position tracking across newlines.
func TestLexLineColumns(t *testing.T) {
	toks, err := Lex("a\n  bb\n\tc")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[1].Line != 2 || toks[1].Col != 3 || toks[2].Line != 3 {
		t.Errorf("positions wrong: %+v", toks[:3])
	}
}
