package lang

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`unsigned int(5) a = 0x1F + 0b10; // comment
		/* block */ a <<= 2;`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.Kind == TokEOF {
			break
		}
		texts = append(texts, tk.Text)
	}
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "unsigned int ( 5 ) a = 0x1F + 0b10 ;") {
		t.Errorf("lex: %s", joined)
	}
	// Hex and binary literal values.
	for _, tk := range toks {
		if tk.Text == "0x1F" && tk.Int != 31 {
			t.Errorf("hex literal = %d", tk.Int)
		}
		if tk.Text == "0b10" && tk.Int != 2 {
			t.Errorf("binary literal = %d", tk.Int)
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("a @ b"); err == nil {
		t.Error("invalid character should fail")
	}
	if _, err := Lex("/* unterminated"); err == nil {
		t.Error("unterminated comment should fail")
	}
	if _, err := Lex("0x;"); err == nil {
		t.Error("malformed hex literal should fail")
	}
}

func TestParseFig8(t *testing.T) {
	prog, err := Parse(`
		unsigned int(6) main(unsigned int(5) a, unsigned int(5) b) {
			unsigned int(6) c;
			c = a + b;
			return c;
		}`)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Funcs["main"]
	if fn == nil {
		t.Fatal("main not parsed")
	}
	if len(fn.Params) != 2 || fn.Params[0].Name != "a" || fn.Params[1].Type.Bits != 5 {
		t.Errorf("params wrong: %+v", fn.Params)
	}
	if fn.Ret.Bits != 6 || fn.Ret.Kind != TypeUInt {
		t.Errorf("return type %v", fn.Ret)
	}
	if len(fn.Body.Stmts) != 3 {
		t.Errorf("%d statements", len(fn.Body.Stmts))
	}
}

func TestParseStructForIfCall(t *testing.T) {
	prog, err := Parse(`
		struct Pixel {
			unsigned int(8) r;
			unsigned int(8) g;
			unsigned int(8) b;
			unsigned int(4) hist[4];
		}
		bool luma_gt(struct Pixel p, unsigned int(10) t) {
			return p.r + p.g + p.b > t;
		}
		unsigned int(8) main(struct Pixel p) {
			unsigned int(8) y = 0;
			for (unsigned int(4) i = 0; i < 4; i = i + 1) {
				if (luma_gt(p, 300)) {
					y = y + p.hist[i];
				} else {
					y = y - 1;
				}
			}
			return y;
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Structs) != 1 || len(prog.Funcs) != 2 {
		t.Fatalf("structs/funcs = %d/%d", len(prog.Structs), len(prog.Funcs))
	}
	sd := prog.Structs["Pixel"]
	if len(sd.Fields) != 4 || sd.Fields[3].ArrayLen != 4 {
		t.Errorf("fields: %+v", sd.Fields)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	prog, err := Parse(`unsigned int(8) main(unsigned int(8) a, unsigned int(8) b) {
		return a + b * 2 << 1 & 3;
	}`)
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.Funcs["main"].Body.Stmts[0].(*Return)
	// & binds loosest: (a + b*2 << 1) & 3.
	top, ok := ret.Value.(*Binary)
	if !ok || top.Op != "&" {
		t.Fatalf("top operator = %v", ret.Value)
	}
	shift, ok := top.L.(*Binary)
	if !ok || shift.Op != "<<" {
		t.Fatalf("second level = %+v", top.L)
	}
	add, ok := shift.L.(*Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("third level = %+v", shift.L)
	}
	mul, ok := add.R.(*Binary)
	if !ok || mul.Op != "*" {
		t.Fatalf("fourth level = %+v", add.R)
	}
}

func TestUnaryAndPostfix(t *testing.T) {
	prog, err := Parse(`unsigned int(8) main(unsigned int(8) a) {
		unsigned int(8) w[2];
		w[0] = ~a;
		w[1] = -a + w[0];
		return w[1];
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Funcs["main"] == nil {
		t.Fatal("parse failed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"width-range", `unsigned int(65) main(){ return 0; }`, "1..64"},
		{"width-zero", `unsigned int(0) main(){ return 0; }`, "1..64"},
		{"missing-paren", `unsigned int(8 main(){ return 0; }`, "expected"},
		{"missing-semi", `unsigned int(8) main(){ return 0 }`, "expected"},
		{"struct-redef", `struct A { bool x; } struct A { bool y; } unsigned int(1) main(){ return 0; }`, "redefined"},
		{"func-redef", `bool f(){ return true; } bool f(){ return true; } `, "redefined"},
		{"bad-expr", `bool main(){ return ; }`, "expected expression"},
		{"unterminated-block", `bool main(){ return true;`, "end of file"},
		{"array-init", `bool main(){ unsigned int(2) w[2] = 3; return true; }`, "cannot be initialised"},
		{"bad-array-len", `bool main(){ unsigned int(2) w[0]; return true; }`, "positive array length"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestTypeString(t *testing.T) {
	cases := map[string]Type{
		"unsigned int(5)": {Kind: TypeUInt, Bits: 5},
		"int(9)":          {Kind: TypeInt, Bits: 9},
		"bool":            {Kind: TypeBool, Bits: 1},
		"struct P":        {Kind: TypeStruct, Name: "P"},
	}
	for want, ty := range cases {
		if ty.String() != want {
			t.Errorf("String = %q, want %q", ty.String(), want)
		}
	}
	if (Type{Kind: TypeInt}).Signed() != true || (Type{Kind: TypeUInt}).Signed() {
		t.Error("Signed wrong")
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Parse("unsigned int(8) main() {\n\n  return @;\n}")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should name line 3: %v", err)
	}
}
