package lang

import "fmt"

// Parse lexes and parses a compilation unit.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{Structs: map[string]*StructDef{}, Funcs: map[string]*FuncDef{}}
	for p.peek().Kind != TokEOF {
		if p.peekIs("struct") && p.at(1).Kind == TokIdent && p.at(2).Text == "{" {
			sd, err := p.parseStruct()
			if err != nil {
				return nil, err
			}
			if _, dup := prog.Structs[sd.Name]; dup {
				return nil, fmt.Errorf("line %d: struct %s redefined", sd.Line, sd.Name)
			}
			prog.Structs[sd.Name] = sd
			continue
		}
		fd, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		if _, dup := prog.Funcs[fd.Name]; dup {
			return nil, fmt.Errorf("line %d: function %s redefined", fd.Line, fd.Name)
		}
		prog.Funcs[fd.Name] = fd
		prog.Order = append(prog.Order, fd.Name)
	}
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) at(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) peekIs(text string) bool { return p.peek().Text == text && p.peek().Kind != TokInt }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(text string) bool {
	if p.peekIs(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) (Token, error) {
	t := p.peek()
	if !p.peekIs(text) {
		return t, fmt.Errorf("line %d: expected %q, found %s", t.Line, text, t)
	}
	p.pos++
	return t, nil
}

func (p *parser) expectIdent() (Token, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return t, fmt.Errorf("line %d: expected identifier, found %s", t.Line, t)
	}
	p.pos++
	return t, nil
}

// typeAhead reports whether a type begins at the current position.
func (p *parser) typeAhead() bool {
	switch p.peek().Text {
	case "unsigned", "int", "bool":
		return p.peek().Kind == TokKeyword
	case "struct":
		return p.at(1).Kind == TokIdent && p.at(2).Text != "{"
	}
	return false
}

func (p *parser) parseType() (Type, error) {
	t := p.next()
	switch t.Text {
	case "bool":
		return Type{Kind: TypeBool, Bits: 1}, nil
	case "unsigned":
		if _, err := p.expect("int"); err != nil {
			return Type{}, err
		}
		bitsN, err := p.parseWidth()
		return Type{Kind: TypeUInt, Bits: bitsN}, err
	case "int":
		bitsN, err := p.parseWidth()
		return Type{Kind: TypeInt, Bits: bitsN}, err
	case "struct":
		name, err := p.expectIdent()
		if err != nil {
			return Type{}, err
		}
		return Type{Kind: TypeStruct, Name: name.Text}, nil
	}
	return Type{}, fmt.Errorf("line %d: expected type, found %s", t.Line, t)
}

func (p *parser) parseWidth() (int, error) {
	if _, err := p.expect("("); err != nil {
		return 0, err
	}
	t := p.next()
	if t.Kind != TokInt {
		return 0, fmt.Errorf("line %d: expected bit width, found %s", t.Line, t)
	}
	if t.Int < 1 || t.Int > 64 {
		return 0, fmt.Errorf("line %d: bit width %d outside the supported 1..64 range", t.Line, t.Int)
	}
	if _, err := p.expect(")"); err != nil {
		return 0, err
	}
	return int(t.Int), nil
}

func (p *parser) parseStruct() (*StructDef, error) {
	start := p.next() // struct
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	sd := &StructDef{Name: name.Text, Line: start.Line}
	for !p.accept("}") {
		ft, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		f := Field{Name: fn.Text, Type: ft}
		if p.accept("[") {
			n := p.next()
			if n.Kind != TokInt || n.Int == 0 {
				return nil, fmt.Errorf("line %d: expected positive array length", n.Line)
			}
			f.ArrayLen = int(n.Int)
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		sd.Fields = append(sd.Fields, f)
	}
	p.accept(";")
	return sd, nil
}

func (p *parser) parseFunc() (*FuncDef, error) {
	start := p.peek()
	ret, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	fd := &FuncDef{Name: name.Text, Ret: ret, Line: start.Line}
	for !p.accept(")") {
		if len(fd.Params) > 0 {
			if _, err := p.expect(","); err != nil {
				return nil, err
			}
		}
		pt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		fd.Params = append(fd.Params, Param{Name: pn.Text, Type: pt})
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *parser) parseBlock() (*Block, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.accept("}") {
		if p.peek().Kind == TokEOF {
			return nil, fmt.Errorf("line %d: unexpected end of file in block", p.peek().Line)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.peekIs("{"):
		return p.parseBlock()
	case p.peekIs("if"):
		return p.parseIf()
	case p.peekIs("for"):
		return p.parseFor()
	case p.peekIs("return"):
		t := p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Return{Value: e, Line: t.Line}, nil
	case p.typeAhead():
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return d, nil
	default:
		a, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return a, nil
	}
}

func (p *parser) parseDecl() (*Decl, error) {
	start := p.peek()
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	d := &Decl{Type: ty, Line: start.Line}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d.Name = name.Text
	if p.accept("[") {
		n := p.next()
		if n.Kind != TokInt || n.Int == 0 {
			return nil, fmt.Errorf("line %d: expected positive array length", n.Line)
		}
		d.ArrayLen = int(n.Int)
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if p.accept("=") {
		if d.ArrayLen > 0 {
			return nil, fmt.Errorf("line %d: array declarations cannot be initialised inline", d.Line)
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	// Comma-separated additional declarators are not supported; the
	// paper's examples use one declaration per name or comma lists in
	// parameters only.
	return d, nil
}

func (p *parser) parseAssign() (*Assign, error) {
	start := p.peek()
	lhs, err := p.parseLValue()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("="); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Assign{Target: lhs, Value: rhs, Line: start.Line}, nil
}

func (p *parser) parseLValue() (Expr, error) {
	id, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var e Expr = &Ident{Name: id.Text, Line: id.Line}
	for {
		switch {
		case p.accept("."):
			f, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			e = &Member{X: e, Field: f.Text, Line: f.Line}
		case p.accept("["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &Index{X: e, IndexExpr: idx, Line: id.Line}
		default:
			return e, nil
		}
	}
}

func (p *parser) parseIf() (Stmt, error) {
	t := p.next() // if
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st := &If{Cond: cond, Then: then, Line: t.Line}
	if p.accept("else") {
		st.Else, err = p.parseStmt()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) parseFor() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	var init Stmt
	var err error
	if p.typeAhead() {
		init, err = p.parseDecl()
	} else {
		init, err = p.parseAssign()
	}
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	post, err := p.parseAssign()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &For{Init: init, Cond: cond, Post: post, Body: body, Line: t.Line}, nil
}

// Operator precedence, low to high.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", ">", "<=", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(0) }

func (p *parser) parseBinary(level int) (Expr, error) {
	if level == len(precLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precLevels[level] {
			if p.peek().Kind == TokPunct && p.peek().Text == op {
				t := p.next()
				rhs, err := p.parseBinary(level + 1)
				if err != nil {
					return nil, err
				}
				lhs = &Binary{Op: op, L: lhs, R: rhs, Line: t.Line}
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokPunct && (t.Text == "-" || t.Text == "~" || t.Text == "!") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.Text, X: x, Line: t.Line}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("."):
			f, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			e = &Member{X: e, Field: f.Text, Line: f.Line}
		case p.accept("["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &Index{X: e, IndexExpr: idx, Line: ExprLine(e)}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokInt:
		p.next()
		return &IntLit{Value: t.Int, Line: t.Line}, nil
	case t.Text == "true" || t.Text == "false":
		p.next()
		return &BoolLit{Value: t.Text == "true", Line: t.Line}, nil
	case t.Kind == TokIdent:
		p.next()
		if p.peekIs("(") {
			p.next()
			c := &Call{Name: t.Text, Line: t.Line}
			for !p.accept(")") {
				if len(c.Args) > 0 {
					if _, err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				c.Args = append(c.Args, a)
			}
			return c, nil
		}
		return &Ident{Name: t.Text, Line: t.Line}, nil
	case t.Text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, fmt.Errorf("line %d: expected expression, found %s", t.Line, t)
}
