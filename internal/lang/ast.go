package lang

import "fmt"

// TypeKind distinguishes the language's type families.
type TypeKind int

// Type kinds.
const (
	TypeUInt TypeKind = iota // unsigned int(N)
	TypeInt                  // int(N), two's complement
	TypeBool
	TypeStruct
)

// Type is a resolved or syntactic type. For structs, Name refers to a
// struct definition in the program.
type Type struct {
	Kind TypeKind
	Bits int    // integer width; 1 for bool
	Name string // struct name
}

// Signed reports whether the type is a signed integer.
func (t Type) Signed() bool { return t.Kind == TypeInt }

func (t Type) String() string {
	switch t.Kind {
	case TypeUInt:
		return fmt.Sprintf("unsigned int(%d)", t.Bits)
	case TypeInt:
		return fmt.Sprintf("int(%d)", t.Bits)
	case TypeBool:
		return "bool"
	case TypeStruct:
		return "struct " + t.Name
	}
	return "?"
}

// Field is one member of a struct definition.
type Field struct {
	Name string
	Type Type
	// ArrayLen > 0 makes the field a fixed-size array.
	ArrayLen int
}

// StructDef is a user-defined custom data type (§V-A: "users can define
// their own custom data types").
type StructDef struct {
	Name   string
	Fields []Field
	Line   int
}

// Param is a function parameter. Parameters of main are the per-slot
// input vectors (Fig. 8).
type Param struct {
	Name string
	Type Type
}

// FuncDef is a function definition. Non-main functions are inlined at
// their call sites during DFG generation.
type FuncDef struct {
	Name   string
	Params []Param
	Ret    Type
	Body   *Block
	Line   int
}

// Program is a parsed compilation unit.
type Program struct {
	Structs map[string]*StructDef
	Funcs   map[string]*FuncDef
	Order   []string // function definition order, for listings
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Block is a `{ ... }` statement list.
type Block struct {
	Stmts []Stmt
}

// Decl declares a variable, optionally an array, optionally initialised.
type Decl struct {
	Name     string
	Type     Type
	ArrayLen int // 0 = scalar
	Init     Expr
	Line     int
}

// Assign stores the value of Value into the l-value Target.
type Assign struct {
	Target Expr // Ident, Index or Member chain
	Value  Expr
	Line   int
}

// If executes Then when Cond is true, otherwise Else (which may be nil).
// On Hyper-AP both branches are executed with predicated writes
// (Fig. 13b).
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt
	Line int
}

// For is a counted loop. The compilation framework requires the bounds to
// be compile-time constants so the loop can be fully unrolled (§V-A
// constraint 1).
type For struct {
	Init Stmt // Decl or Assign
	Cond Expr
	Post Stmt // Assign
	Body Stmt
	Line int
}

// Return produces the function result.
type Return struct {
	Value Expr
	Line  int
}

func (*Block) stmtNode()  {}
func (*Decl) stmtNode()   {}
func (*Assign) stmtNode() {}
func (*If) stmtNode()     {}
func (*For) stmtNode()    {}
func (*Return) stmtNode() {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// Ident references a variable.
type Ident struct {
	Name string
	Line int
}

// IntLit is an integer literal.
type IntLit struct {
	Value uint64
	Line  int
}

// BoolLit is true or false.
type BoolLit struct {
	Value bool
	Line  int
}

// Binary applies an infix operator.
type Binary struct {
	Op   string
	L, R Expr
	Line int
}

// Unary applies a prefix operator: -, ~ or !.
type Unary struct {
	Op   string
	X    Expr
	Line int
}

// Call invokes a user function (inlined) or an intrinsic (sqrt, exp, abs,
// min, max).
type Call struct {
	Name string
	Args []Expr
	Line int
}

// Index selects an array element; the index must be compile-time
// constant (§V-A: no pointer chasing, data alignment must be static).
type Index struct {
	X         Expr
	IndexExpr Expr
	Line      int
}

// Member selects a struct field.
type Member struct {
	X     Expr
	Field string
	Line  int
}

func (*Ident) exprNode()   {}
func (*IntLit) exprNode()  {}
func (*BoolLit) exprNode() {}
func (*Binary) exprNode()  {}
func (*Unary) exprNode()   {}
func (*Call) exprNode()    {}
func (*Index) exprNode()   {}
func (*Member) exprNode()  {}

// ExprLine returns the source line of an expression.
func ExprLine(e Expr) int {
	switch x := e.(type) {
	case *Ident:
		return x.Line
	case *IntLit:
		return x.Line
	case *BoolLit:
		return x.Line
	case *Binary:
		return x.Line
	case *Unary:
		return x.Line
	case *Call:
		return x.Line
	case *Index:
		return x.Line
	case *Member:
		return x.Line
	}
	return 0
}
