// Package lang implements the constrained C-like programming interface of
// Hyper-AP (paper §V-A, Fig. 8): arbitrary-width integer types
// (unsigned int(N) / int(N)), bool, structs, fixed-size arrays,
// compile-time-unrollable loops and both-branch conditionals. Programs
// describe the instruction stream for a single data stream; the
// compilation framework applies it across all SIMD slots.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies a token.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokKeyword
	TokPunct
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Int  uint64 // valid when Kind == TokInt
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	case TokInt:
		return fmt.Sprintf("%d", t.Int)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"unsigned": true, "int": true, "bool": true, "struct": true,
	"if": true, "else": true, "for": true, "return": true,
	"true": true, "false": true,
}

// multi-character punctuation, longest first.
var puncts = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ";", ",", ".",
}

// Lex tokenises source text. // and /* */ comments are skipped.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if src[i+k] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			advance(1)
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			advance(2)
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				advance(1)
			}
			if i+1 >= len(src) {
				return nil, fmt.Errorf("line %d: unterminated block comment", line)
			}
			advance(2)
		case unicode.IsDigit(rune(c)):
			start, l0, c0 := i, line, col
			base := uint64(10)
			if c == '0' && i+1 < len(src) && (src[i+1] == 'x' || src[i+1] == 'X') {
				base = 16
				advance(2)
			} else if c == '0' && i+1 < len(src) && (src[i+1] == 'b' || src[i+1] == 'B') {
				base = 2
				advance(2)
			}
			digStart := i
			for i < len(src) && isDigitIn(src[i], base) {
				advance(1)
			}
			text := src[start:i]
			digits := src[digStart:i]
			if base != 10 && digits == "" {
				return nil, fmt.Errorf("line %d: malformed numeric literal %q", l0, text)
			}
			var v uint64
			for _, d := range digits {
				v = v*base + uint64(digitVal(byte(d)))
			}
			toks = append(toks, Token{Kind: TokInt, Text: text, Int: v, Line: l0, Col: c0})
		case unicode.IsLetter(rune(c)) || c == '_':
			start, l0, c0 := i, line, col
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				advance(1)
			}
			text := src[start:i]
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Line: l0, Col: c0})
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, Token{Kind: TokPunct, Text: p, Line: line, Col: col})
					advance(len(p))
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("line %d:%d: unexpected character %q", line, col, c)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}

func isDigitIn(c byte, base uint64) bool {
	switch {
	case c >= '0' && c <= '9':
		return uint64(c-'0') < base
	case c >= 'a' && c <= 'f':
		return base == 16
	case c >= 'A' && c <= 'F':
		return base == 16
	}
	return false
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}
