// Package imp models the IMP baseline (Fujiki, Mahlke, Das: "In-Memory
// Data Parallel Processor", ASPLOS 2018, reference [21] of the paper): a
// general-purpose PIM architecture built on the dot-product capability of
// RRAM crossbar arrays, computing in the analog domain with ADC/DAC
// converters.
//
// The Hyper-AP paper does not re-simulate IMP; it takes IMP's published
// numbers as a fixed reference dataset ("The performance results of GPU
// and IMP baseline are obtained from the reference [21]", §VI-A.3). This
// package plays the same role: the Table II configuration is the paper's,
// and the per-operation performance table is calibrated from the values
// annotated in Figs. 15-17 (Hyper-AP measurement ÷ reported improvement
// factor). Kernel-level behaviour (Fig. 18) uses an analytical model over
// the same per-operation numbers plus a router-network communication
// charge, reflecting §VI-D's analysis: IMP has 16 rows per SIMD slot, a
// router-based inter-slot network, and native dot-product support that
// favours kernels like Backprop.
package imp

import "fmt"

// Chip is the IMP column of Table II.
type Chip struct {
	Name        string
	SIMDSlots   int64
	FreqHz      float64
	AreaMM2     float64
	TDPWatts    float64
	MemoryBytes int64
	RowsPerSlot int // one IMP SIMD slot occupies 16 rows (§VI-B)
}

// Default returns the Table II configuration.
func Default() Chip {
	return Chip{
		Name:        "IMP",
		SIMDSlots:   2_097_152,
		FreqHz:      20e6,
		AreaMM2:     494,
		TDPWatts:    416,
		MemoryBytes: 1 << 30,
		RowsPerSlot: 16,
	}
}

// Op identifies one of the evaluated arithmetic operations.
type Op string

// The representative operations of Figs. 15-17.
const (
	OpAdd  Op = "Add"
	OpMul  Op = "Mul"
	OpDiv  Op = "Div"
	OpSqrt Op = "Sqrt"
	OpExp  Op = "Exp"
)

// Perf is one operation's performance record.
type Perf struct {
	LatencyNS      float64
	ThroughputGOPS float64
	PowerEffGOPSW  float64
	AreaEffGOPSmm2 float64
}

// PowerWatts returns the average power implied by the record.
func (p Perf) PowerWatts() float64 { return p.ThroughputGOPS / p.PowerEffGOPSW }

// perf32 is the calibrated per-operation table for 32-bit unsigned
// integers: each value is the Hyper-AP measurement from Fig. 15 divided
// by the highlighted improvement factor.
var perf32 = map[Op]Perf{
	OpAdd:  {LatencyNS: 592 * 3.9, ThroughputGOPS: 56680 / 4.1, PowerEffGOPSW: 233 / 2.4, AreaEffGOPSmm2: 126 / 4.4},
	OpMul:  {LatencyNS: 7196 * 8.0, ThroughputGOPS: 4663 / 2.0, PowerEffGOPSW: 14 / 1.4, AreaEffGOPSmm2: 10 / 2.2},
	OpDiv:  {LatencyNS: 20928 * 6.8, ThroughputGOPS: 1603 / 2.4, PowerEffGOPSW: 4.8 / 54, AreaEffGOPSmm2: 3.5 / 2.5},
	OpSqrt: {LatencyNS: 58661 * 10, ThroughputGOPS: 572 / 1.6, PowerEffGOPSW: 1.7 / 19, AreaEffGOPSmm2: 1.3 / 1.7},
	OpExp:  {LatencyNS: 25760 * 4.5, ThroughputGOPS: 1303 / 3.4, PowerEffGOPSW: 3.8 / 54, AreaEffGOPSmm2: 2.9 / 3.7},
}

// Arithmetic returns IMP's performance for one representative operation
// at the given data width. IMP supports only 32-bit integers (§VII-B), so
// narrower widths return the 32-bit numbers unchanged — which is exactly
// why Hyper-AP's flexible-precision advantage grows in Fig. 16.
func (c Chip) Arithmetic(op Op, widthBits int) (Perf, error) {
	p, ok := perf32[op]
	if !ok {
		return Perf{}, fmt.Errorf("imp: unknown operation %q", op)
	}
	return p, nil
}

// MergedAdds returns the performance of n chained additions (Fig. 17's
// Multi_Add): IMP merges operations at nearly constant latency by raising
// ADC resolution, so throughput scales with n while energy grows — the
// higher resolution costs power quadratically; the paper reports Hyper-AP
// gaining 1.2× extra power efficiency on merged adds, which the resolution
// penalty here reproduces.
func (c Chip) MergedAdds(n int) Perf {
	base := perf32[OpAdd]
	p := base
	p.ThroughputGOPS = base.ThroughputGOPS * float64(n)
	// ADC resolution penalty: energy per op grows with the merge depth.
	p.PowerEffGOPSW = base.PowerEffGOPSW * float64(n) / (1 + 0.55*float64(n-1))
	p.AreaEffGOPSmm2 = base.AreaEffGOPSmm2 * float64(n)
	return p
}

// ImmediateOp returns performance for an operation with an immediate
// operand: IMP has a fixed execution time per operation and cannot embed
// immediates into its compute (§V-B.4c), so the numbers are unchanged.
func (c Chip) ImmediateOp(op Op) (Perf, error) {
	return c.Arithmetic(op, 32)
}

// KernelCost is the analytical Fig. 18 model: per-element operation
// counts are charged at the per-operation slot latencies, communication
// crosses the router network, and everything is scaled by the occupancy
// the kernel achieves.
type KernelCost struct {
	Elements      int64 // data elements (one per SIMD slot, duplicated as needed)
	OpsPerElement map[Op]float64
	// CritOps is the per-element dependent-operation chain: independent
	// operations pipeline at the architecture's throughput, but a chain
	// of dependent operations pays full per-operation latency. When nil,
	// OpsPerElement is assumed fully serial.
	CritOps       map[Op]float64
	DotProductOps float64 // MACs per element IMP executes natively in the analog domain
	ElementMoves  float64 // inter-slot transfers per element (router network)
}

// Router-network constants (§VI-D: IMP's router-based network has higher
// synchronisation cost than Hyper-AP's nearest-neighbour links).
const (
	routerHopNS     = 55.0
	avgHopsPerMove  = 4.0
	routerEnergyPJ  = 180.0 // per element-move
	dotProductNS    = 110.0 // one analog MAC pass (amortised per element)
	dotProductPJ    = 310.0 // ADC/DAC energy per MAC pass per element
	opEnergyScalePJ = 1.0
)

// Evaluate returns the kernel's execution time (ns) and energy (J). Time
// is the larger of two bounds: the per-element dependent chain at full
// per-operation latency (scaled by occupancy waves), and the total
// operation volume at the architecture's sustained throughput (which
// captures the limited number of shared ADCs).
func (c Chip) Evaluate(k KernelCost) (timeNS, energyJ float64) {
	waves := float64((k.Elements + c.SIMDSlots - 1) / c.SIMDSlots)
	if waves < 1 {
		waves = 1
	}
	crit := k.CritOps
	if crit == nil {
		crit = k.OpsPerElement
	}
	var critNS float64
	for op, n := range crit {
		critNS += n * perf32[op].LatencyNS
	}
	critNS += k.DotProductOps * dotProductNS

	var volumeNS, opEnergy float64
	for op, n := range k.OpsPerElement {
		p := perf32[op]
		volumeNS += float64(k.Elements) * n / p.ThroughputGOPS // ops / (Gops/s) = ns
		// Energy per op per element from the power-efficiency record:
		// J/op = 1 / (GOPS/W × 1e9).
		opEnergy += n * (1 / (p.PowerEffGOPSW * 1e9))
	}
	commNS := k.ElementMoves * routerHopNS * avgHopsPerMove * waves
	timeNS = critNS * waves
	if volumeNS > timeNS {
		timeNS = volumeNS
	}
	timeNS += commNS

	perElem := opEnergy + k.DotProductOps*dotProductPJ*1e-12 + k.ElementMoves*routerEnergyPJ*1e-12
	energyJ = perElem * float64(k.Elements) * opEnergyScalePJ
	return timeNS, energyJ
}
