package imp

import "testing"

func TestTableIIConfig(t *testing.T) {
	c := Default()
	if c.SIMDSlots != 2_097_152 {
		t.Errorf("slots = %d, want 2097152 (Table II)", c.SIMDSlots)
	}
	if c.FreqHz != 20e6 || c.AreaMM2 != 494 || c.TDPWatts != 416 {
		t.Errorf("config wrong: %+v", c)
	}
	if c.RowsPerSlot != 16 {
		t.Error("IMP uses 16 rows per SIMD slot (§VI-B)")
	}
}

func TestArithmeticTable(t *testing.T) {
	c := Default()
	for _, op := range []Op{OpAdd, OpMul, OpDiv, OpSqrt, OpExp} {
		p, err := c.Arithmetic(op, 32)
		if err != nil {
			t.Fatal(err)
		}
		if p.LatencyNS <= 0 || p.ThroughputGOPS <= 0 || p.PowerEffGOPSW <= 0 || p.AreaEffGOPSmm2 <= 0 {
			t.Errorf("%s: degenerate record %+v", op, p)
		}
		// 32-bit only: a 16-bit request returns identical numbers.
		p16, _ := c.Arithmetic(op, 16)
		if p16 != p {
			t.Errorf("%s: IMP must be width-insensitive", op)
		}
	}
	if _, err := c.Arithmetic("Tan", 32); err == nil {
		t.Error("unknown op must error")
	}
}

func TestAddIsFastestDivSlowestPowerWise(t *testing.T) {
	c := Default()
	add, _ := c.Arithmetic(OpAdd, 32)
	div, _ := c.Arithmetic(OpDiv, 32)
	if add.LatencyNS >= div.LatencyNS {
		t.Error("add must be faster than div")
	}
	if add.PowerEffGOPSW <= div.PowerEffGOPSW {
		t.Error("add must be more power-efficient than div")
	}
	if add.PowerWatts() <= 0 {
		t.Error("PowerWatts degenerate")
	}
}

func TestMergedAdds(t *testing.T) {
	c := Default()
	m := c.MergedAdds(3)
	single, _ := c.Arithmetic(OpAdd, 32)
	if m.ThroughputGOPS != 3*single.ThroughputGOPS {
		t.Error("merged throughput must scale with depth")
	}
	// The ADC-resolution penalty: merged power efficiency per op is worse
	// than 3× the single-op record.
	if m.PowerEffGOPSW >= 3*single.PowerEffGOPSW {
		t.Error("merging must cost ADC energy (§VI-C)")
	}
}

func TestImmediateOpUnchanged(t *testing.T) {
	c := Default()
	imm, err := c.ImmediateOp(OpMul)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := c.Arithmetic(OpMul, 32)
	if imm != plain {
		t.Error("IMP cannot exploit immediate operands (§V-B.4c)")
	}
}

func TestKernelEvaluate(t *testing.T) {
	c := Default()
	k := KernelCost{
		Elements:      1 << 20,
		OpsPerElement: map[Op]float64{OpAdd: 10, OpMul: 4},
		ElementMoves:  2,
	}
	tm, en := c.Evaluate(k)
	if tm <= 0 || en <= 0 {
		t.Fatal("degenerate kernel evaluation")
	}
	// Communication adds time: removing moves must be faster.
	k2 := k
	k2.ElementMoves = 0
	tm2, en2 := c.Evaluate(k2)
	if tm2 >= tm || en2 >= en {
		t.Error("router communication must cost time and energy")
	}
	// Dot-product support: adding MACs costs less time than the scalar
	// multiply alternative.
	k3 := k2
	k3.DotProductOps = 4
	k3.OpsPerElement = map[Op]float64{OpAdd: 10}
	tm3, _ := c.Evaluate(k3)
	if tm3 >= tm2 {
		t.Error("native dot product should beat scalar multiplies")
	}
	// More elements than slots: waves scale time.
	k4 := k2
	k4.Elements = c.SIMDSlots * 4
	tm4, _ := c.Evaluate(k4)
	if tm4 < 3*tm2 {
		t.Error("multi-wave execution must scale time")
	}
}
