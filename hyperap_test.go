package hyperap

import (
	"math/rand"
	"strings"
	"testing"
)

func TestCompileRunQuickstart(t *testing.T) {
	ex, err := Compile(`
		unsigned int(6) main(unsigned int(5) a, unsigned int(5) b) {
			unsigned int(6) c;
			c = a + b;
			return c;
		}`)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := ex.Run([][]uint64{{3, 4}, {31, 31}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{7, 62, 0}
	for i, o := range outs {
		if o[0] != want[i] {
			t.Errorf("slot %d = %d, want %d", i, o[0], want[i])
		}
	}
	if ex.Stats().Searches == 0 || ex.LatencyNS() <= 0 {
		t.Error("stats missing")
	}
	if !strings.Contains(ex.Disassemble(), "Search") {
		t.Error("disassembly missing searches")
	}
	if len(ex.Binary()) == 0 {
		t.Error("binary encoding empty")
	}
	if len(ex.InputNames()) != 2 {
		t.Error("input names wrong")
	}
}

func TestVerifyAndReference(t *testing.T) {
	ex, err := Compile(`unsigned int(16) main(unsigned int(8) a, unsigned int(8) b){ return a * b; }`)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var inputs [][]uint64
	for i := 0; i < 32; i++ {
		inputs = append(inputs, []uint64{rng.Uint64() & 255, rng.Uint64() & 255})
	}
	if err := ex.Verify(inputs); err != nil {
		t.Fatal(err)
	}
	if got := ex.Reference([]uint64{12, 11}); got[0] != 132 {
		t.Errorf("reference = %d", got[0])
	}
}

func TestOptions(t *testing.T) {
	src := `unsigned int(5) main(unsigned int(4) a, unsigned int(4) b){ return a + b; }`
	hyper, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	trad, err := Compile(src, WithTraditionalAP())
	if err != nil {
		t.Fatal(err)
	}
	if trad.Stats().Searches <= hyper.Stats().Searches {
		t.Error("traditional AP must need more searches")
	}
	cmos, err := Compile(src, WithCMOS())
	if err != nil {
		t.Fatal(err)
	}
	if cmos.Stats().Cycles >= hyper.Stats().Cycles {
		t.Error("CMOS writes are cheap; cycles must drop")
	}
	small, err := Compile(src, WithLUTInputs(4))
	if err != nil {
		t.Fatal(err)
	}
	if small.Stats().LUTs < hyper.Stats().LUTs {
		t.Error("smaller tables cannot reduce the table count")
	}
	mono, err := Compile(src, WithMonolithicArray())
	if err != nil {
		t.Fatal(err)
	}
	if mono.Stats().Cycles <= hyper.Stats().Cycles {
		t.Error("monolithic array must be slower")
	}
	noacc, err := Compile(src, WithoutAccumulation())
	if err != nil {
		t.Fatal(err)
	}
	if noacc.Stats().Writes <= hyper.Stats().Writes {
		t.Error("disabling accumulation must add writes")
	}
	if err := noacc.Verify([][]uint64{{7, 9}, {15, 15}}); err != nil {
		t.Error(err)
	}
}

func TestAssociativeMemory(t *testing.T) {
	am, err := NewAssociativeMemory(16, 12)
	if err != nil {
		t.Fatal(err)
	}
	words := []uint64{0xABC, 0x123, 0xA00, 0xABC, 0xFFF}
	for i, w := range words {
		am.Store(i, w)
	}
	// Erased rows hold the all-X state and would match every query;
	// initialise the rest like a real deployment would.
	for i := len(words); i < 16; i++ {
		am.Store(i, 0)
	}
	// Exact match.
	am.Search(0xABC, 0xFFF)
	if am.Count() != 2 || am.Index() != 0 {
		t.Errorf("exact search: count=%d index=%d", am.Count(), am.Index())
	}
	// Masked search: high nibble A.
	am.Search(0xA00, 0xF00)
	if am.Count() != 3 {
		t.Errorf("masked search count = %d, want 3", am.Count())
	}
	if got := am.Matches(); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Errorf("matches = %v", got)
	}
	// Accumulation.
	am.Search(0x123, 0xFFF)
	am.SearchAccumulate(0xFFF, 0xFFF)
	if am.Count() != 2 {
		t.Errorf("accumulated count = %d, want 2", am.Count())
	}
	// Associative write: set bit 0 of all tagged rows.
	am.WriteTagged(1, 1)
	if v, _ := am.Load(1); v != 0x123|1 {
		t.Errorf("write-tagged result %x", v)
	}
	// Ternary storage.
	am.StoreTernary(5, 0x0F0, 0xF00) // high nibble don't-care
	am.Search(0xAF0, 0xFFF)
	found := false
	for _, m := range am.Matches() {
		if m == 5 {
			found = true
		}
	}
	if !found {
		t.Error("ternary word should match any high nibble")
	}
	if _, dc := am.Load(5); dc != 0xF00 {
		t.Errorf("don't-care mask = %x", dc)
	}
	if s, w := am.Ops(); s == 0 || w == 0 {
		t.Error("ops not counted")
	}
	if _, err := NewAssociativeMemory(0, 8); err == nil {
		t.Error("invalid geometry must error")
	}
}

func TestPairSubsetKey(t *testing.T) {
	// Subset {01,10} (XOR) must be a single key (Fig. 5c).
	k, ok := PairSubsetKey(0b0110)
	if !ok || k == "" {
		t.Fatal("subset key missing")
	}
	if _, ok := PairSubsetKey(0); ok {
		t.Error("empty subset must fail")
	}
	// All 15 subsets achievable.
	for s := uint8(1); s <= 0xF; s++ {
		if _, ok := PairSubsetKey(s); !ok {
			t.Errorf("subset %04b missing", s)
		}
	}
}

func TestCompileError(t *testing.T) {
	if _, err := Compile(`nope`); err == nil {
		t.Error("bad program must error")
	}
}

// TestRunBatchPublicAPI shards a 600-slot batch across 3 PEs through the
// public API and checks outputs against the golden model plus the
// aggregated physical accounting.
func TestRunBatchPublicAPI(t *testing.T) {
	ex, err := Compile(`unsigned int(6) main(unsigned int(5) a, unsigned int(5) b){ return a + b; }`)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	inputs := make([][]uint64, 600)
	for i := range inputs {
		inputs[i] = []uint64{rng.Uint64() & 31, rng.Uint64() & 31}
	}
	outs, err := ex.RunBatch(inputs, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, vals := range inputs {
		if want := ex.Reference(vals); outs[i][0] != want[0] {
			t.Fatalf("slot %d = %d, want %d", i, outs[i][0], want[0])
		}
	}
	rep, err := ex.ReportBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PEs != 3 {
		t.Errorf("PEs = %d, want 3 (600 slots at 256 per PE)", rep.PEs)
	}
	if len(rep.Outputs) != 600 || rep.EnergyJ <= 0 || rep.MaxCellWrites == 0 {
		t.Errorf("batch report incomplete: %d outputs, %g J, %d max writes",
			len(rep.Outputs), rep.EnergyJ, rep.MaxCellWrites)
	}
	// Cycles are per-pass: sharding must not inflate them.
	single, err := ex.Report(inputs[:8])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != single.Cycles {
		t.Errorf("batch cycles = %d, single-PE cycles = %d; must match per pass", rep.Cycles, single.Cycles)
	}
	// Energy must aggregate across PEs: a 3-PE pass burns more than one PE.
	if rep.EnergyJ <= single.EnergyJ {
		t.Errorf("3-PE energy %g J not above single-PE %g J", rep.EnergyJ, single.EnergyJ)
	}
}

// TestRunEmptyBatchErrors: the zero-slot execution is an explicit error
// at the public API too.
func TestRunEmptyBatchErrors(t *testing.T) {
	ex, err := Compile(`unsigned int(3) main(unsigned int(2) a){ return a; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(nil); err == nil {
		t.Error("Run(nil) must error")
	}
	if _, err := ex.RunBatch(nil); err == nil {
		t.Error("RunBatch(nil) must error")
	}
	if _, err := ex.ReportBatch(nil); err == nil {
		t.Error("ReportBatch(nil) must error")
	}
}
