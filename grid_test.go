package hyperap

import "testing"

func TestGridFacade(t *testing.T) {
	ex, err := Compile(`
		unsigned int(8) main(unsigned int(8) c, unsigned int(8) inL, unsigned int(8) inR) {
			return (inL + inR + (c << 1)) >> 2;
		}`, WithGridLayout())
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(ex, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Elements() != 6 {
		t.Fatalf("elements = %d", g.Elements())
	}
	if g.String() == "" {
		t.Error("empty description")
	}
	// Identity pass: left = right = c ⇒ ret = c.
	for pe := 0; pe < 3; pe++ {
		for row := 0; row < 2; row++ {
			v := uint64(10*pe + row)
			if err := g.Load(pe*2+row, []uint64{v, v, v}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	out, err := g.Read(2) // pe 1, row 0
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 10 {
		t.Fatalf("identity pass: got %d want 10", out[0])
	}
	// Exchange in all four directions exercises the Dir mapping (up/down
	// are edges on a 1-bank chip: they must clear, not crash).
	for _, d := range []Dir{Right, Left, Up, Down} {
		if err := g.ShiftColumns("ret", "inL", d); err != nil {
			t.Fatalf("dir %v: %v", d, err)
		}
	}
	if g.Cycles() <= 0 {
		t.Error("cycles missing")
	}
	// Errors surface through the facade.
	if err := g.ShiftColumns("nope", "inL", Right); err == nil {
		t.Error("unknown source must error")
	}
	if _, err := NewGrid(ex, 0, 2); err == nil {
		t.Error("bad grid must error")
	}
}
