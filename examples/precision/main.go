// Flexible precision: AP natively supports arbitrary bit widths
// (bit-serial execution), so cost scales with the data type — the
// mechanism behind the paper's Fig. 16, where halving the precision
// doubles addition throughput and quadruples the iterative operations.
// This example compiles the same multiply-accumulate at four widths and
// prints how latency and operation counts scale, then shows a custom
// 11-bit type working end to end.
package main

import (
	"fmt"
	"log"

	"hyperap"
)

func macSource(w int) string {
	retW := 2*w + 1
	if retW > 64 {
		retW = 64 // the language caps widths at 64 bits
	}
	return fmt.Sprintf(`
		unsigned int(%d) main(unsigned int(%d) a, unsigned int(%d) b, unsigned int(%d) acc) {
			return acc + a * b;
		}`, retW, w, w, 2*w)
}

func main() {
	fmt.Println("multiply-accumulate at shrinking precision:")
	fmt.Println("width  searches  writes  latency(ns)  slots/op vs 32-bit")
	var base float64
	for _, w := range []int{32, 16, 8, 4} {
		ex, err := hyperap.Compile(macSource(w))
		if err != nil {
			log.Fatal(err)
		}
		s := ex.Stats()
		lat := ex.LatencyNS()
		if w == 32 {
			base = lat
		}
		fmt.Printf("%5d  %8d  %6d  %11.0f  %17.1fx\n",
			w, s.Searches, s.Writes, lat, base/lat)
	}

	// Custom data types: an 11-bit sensor value and a 3-bit gain — no
	// padding to byte boundaries, no wasted columns.
	ex, err := hyperap.Compile(`
		unsigned int(14) main(unsigned int(11) sample, unsigned int(3) gain) {
			return sample * gain;
		}`)
	if err != nil {
		log.Fatal(err)
	}
	inputs := [][]uint64{{2047, 7}, {1024, 3}, {5, 1}}
	if err := ex.Verify(inputs); err != nil {
		log.Fatal(err)
	}
	outs, _ := ex.Run(inputs)
	fmt.Println("\n11-bit x 3-bit custom type:")
	for i, in := range inputs {
		fmt.Printf("  %4d * %d = %5d\n", in[0], in[1], outs[i][0])
	}
	fmt.Printf("  (%.0f ns per pass — narrower than any fixed 16/32-bit unit would allow)\n",
		ex.LatencyNS())
}
