// Quickstart: compile the paper's Fig. 8 program and run it on the
// simulated Hyper-AP hardware, one data element per SIMD slot.
package main

import (
	"fmt"
	"log"

	"hyperap"
)

const program = `
// A program that adds two 5-bit variables (paper Fig. 8).
unsigned int(6) main(unsigned int(5) a, unsigned int(5) b) {
	unsigned int(6) c;
	c = a + b;
	return c;
}`

func main() {
	ex, err := hyperap.Compile(program)
	if err != nil {
		log.Fatal(err)
	}

	// One instruction stream, many data streams: each row of inputs is
	// one SIMD slot, all processed by the same search/write sequence.
	inputs := [][]uint64{{3, 4}, {31, 31}, {17, 5}, {0, 0}}
	outputs, err := ex.Run(inputs)
	if err != nil {
		log.Fatal(err)
	}
	for i, in := range inputs {
		fmt.Printf("slot %d: %2d + %2d = %2d\n", i, in[0], in[1], outputs[i][0])
	}

	s := ex.Stats()
	fmt.Printf("\ncompiled to %d searches + %d writes (%d lookup tables)\n",
		s.Searches, s.Writes, s.LUTs)
	fmt.Printf("per-pass latency: %.0f ns on the RRAM Hyper-AP\n", ex.LatencyNS())
	fmt.Println("\ninstruction stream:")
	fmt.Print(ex.Disassemble())
}
