// DNA k-mer search: the classic associative-processing workload (the
// paper cites resistive CAM DNA aligners [30][35] as motivating
// applications). A reference library of 8-mers is stored in the
// associative memory — including degenerate positions stored as the
// ternary X state — and query patterns are matched against every entry
// in a single search operation, with the reduction tree counting hits
// and returning the first match.
package main

import (
	"fmt"
	"log"

	"hyperap"
)

// 2-bit base encoding.
var baseCode = map[byte]uint64{'A': 0, 'C': 1, 'G': 2, 'T': 3}

// encode packs an 8-mer into 16 bits; 'N' marks a degenerate position
// (returned in the dontCare mask).
func encode(kmer string) (value, dontCare uint64) {
	for i := 0; i < len(kmer); i++ {
		shift := uint(2 * i)
		if kmer[i] == 'N' {
			dontCare |= 0b11 << shift
			continue
		}
		value |= baseCode[kmer[i]] << shift
	}
	return value, dontCare
}

func main() {
	library := []string{
		"ACGTACGT",
		"TTGACCAA",
		"ACGTTGCA",
		"GGGGCCCC",
		"ACNTACGT", // degenerate: matches ACATACGT, ACCTACGT, ...
		"TTGACCAA",
		"CATGCATG",
		"ACGTACGT",
	}
	am, err := hyperap.NewAssociativeMemory(len(library), 16)
	if err != nil {
		log.Fatal(err)
	}
	for row, kmer := range library {
		v, dc := encode(kmer)
		am.StoreTernary(row, v, dc)
	}

	queries := []string{"ACGTACGT", "ACCTACGT", "TTGACCAA", "AAAAAAAA"}
	for _, q := range queries {
		v, _ := encode(q)
		am.Search(v, 0xFFFF) // compare against every entry in parallel
		fmt.Printf("query %s: %d hits", q, am.Count())
		if idx := am.Index(); idx >= 0 {
			fmt.Printf(", first at row %d (%s)", idx, library[idx])
		}
		fmt.Printf("  rows=%v\n", am.Matches())
	}

	// Prefix search with the mask register: all 8-mers starting "ACGT".
	prefix, _ := encode("ACGTAAAA")
	am.Search(prefix, 0x00FF)
	fmt.Printf("prefix ACGT*: %d entries, rows %v\n", am.Count(), am.Matches())

	// Associative write: rewrite the last base of every "ACGTACGT" entry
	// to A, in all tagged rows with one parallel write per bit column.
	exact, _ := encode("ACGTACGT")
	am.Search(exact, 0xFFFF)
	am.WriteTagged(0, 0b11<<14)
	v, _ := am.Load(7)
	fmt.Printf("after parallel rewrite, row 7 holds %04x (ACGTACGA)\n", v)

	s, w := am.Ops()
	fmt.Printf("total: %d searches, %d associative writes\n", s, w)
}
