// 1-D heat diffusion across a chain of PEs: each processing element holds
// a segment of rods (one rod per word row), computes the stencil update
// word-parallel, and exchanges boundary temperatures with its neighbours
// over the chip's local inter-PE links (the MovR data path of §IV-A.6) —
// no host round trips between iterations.
package main

import (
	"fmt"
	"log"
	"strings"

	"hyperap"
)

// Stencil update in 8-bit fixed point: next = (left + right + 2c) / 4.
// The identity trick (left = right = c) also lets the same kernel emit
// the current temperature for the exchange phase.
const kernel = `
unsigned int(8) main(unsigned int(8) c, unsigned int(8) left, unsigned int(8) right) {
	unsigned int(10) s;
	s = left + right + (c << 1);
	return s >> 2;
}`

const (
	pes  = 16 // rod length: one sample per PE
	rods = 4  // independent rods, one per word row
)

func main() {
	ex, err := hyperap.Compile(kernel, hyperap.WithGridLayout())
	if err != nil {
		log.Fatal(err)
	}
	g, err := hyperap.NewGrid(ex, pes, rods)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g)

	// Initial condition: a hot spot in the middle of each rod.
	temp := make([][]uint64, rods)
	for r := range temp {
		temp[r] = make([]uint64, pes)
		temp[r][pes/2] = 200
		temp[r][pes/2-1] = 120
	}
	show := func(label string) {
		var sb strings.Builder
		for _, v := range temp[0] {
			sb.WriteString(fmt.Sprintf("%4d", v))
		}
		fmt.Printf("%-7s%s\n", label, sb.String())
	}
	show("t=0")

	for iter := 1; iter <= 4; iter++ {
		// Phase 1: identity pass (left = right = c) so the output column
		// holds the current temperature, then exchange it with both
		// neighbours entirely on-chip.
		for pe := 0; pe < pes; pe++ {
			for r := 0; r < rods; r++ {
				v := temp[r][pe]
				if err := g.Load(pe*rods+r, []uint64{v, v, v}); err != nil {
					log.Fatal(err)
				}
			}
		}
		if err := g.Run(); err != nil {
			log.Fatal(err)
		}
		if err := g.ShiftColumns("ret", "left", hyperap.Right); err != nil {
			log.Fatal(err)
		}
		if err := g.ShiftColumns("ret", "right", hyperap.Left); err != nil {
			log.Fatal(err)
		}
		// Phase 2: the stencil update proper.
		if err := g.Run(); err != nil {
			log.Fatal(err)
		}
		for pe := 0; pe < pes; pe++ {
			for r := 0; r < rods; r++ {
				out, err := g.Read(pe*rods + r)
				if err != nil {
					log.Fatal(err)
				}
				temp[r][pe] = out[0]
			}
		}
		show(fmt.Sprintf("t=%d", iter))
	}
	fmt.Printf("\n%d simulated cycles total (compute + on-chip exchange)\n", g.Cycles())
}
