// Image pipeline: a fixed-point per-pixel kernel (contrast stretch with
// saturation and a conditional threshold) compiled once and applied to a
// whole tile of pixels word-parallel — the SIMD-in-memory execution the
// paper's intro motivates. The conditional compiles to both-branch
// execution with predicated writes (Fig. 13b).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hyperap"
)

const kernel = `
// Per-pixel contrast stretch in Q8 fixed point:
//   y = clamp((p - lo) * gain >> 4), then binarise against a threshold
//   when the mode flag is set.
unsigned int(8) main(unsigned int(8) p, unsigned int(8) lo,
                     unsigned int(5) gain, bool binarise) {
	unsigned int(8) d;
	d = abs(p - lo);           // pixels below lo clamp via the magnitude
	unsigned int(13) stretched;
	stretched = d * gain;
	unsigned int(9) y;
	y = stretched >> 4;
	unsigned int(8) out = 0;
	if (y > 255) {
		out = 255;
	} else {
		out = y;
	}
	if (binarise == true) {
		if (out > 128) {
			out = 255;
		} else {
			out = 0;
		}
	}
	return out;
}`

func main() {
	ex, err := hyperap.Compile(kernel)
	if err != nil {
		log.Fatal(err)
	}

	// A 16x16 tile: every pixel is one SIMD slot; the whole tile is
	// processed by one pass of the instruction stream.
	rng := rand.New(rand.NewSource(7))
	const pixels = 256
	inputs := make([][]uint64, pixels)
	for i := range inputs {
		inputs[i] = []uint64{
			uint64(rng.Intn(256)), // p
			40,                    // lo
			24,                    // gain (Q4: x1.5)
			0,                     // binarise off
		}
	}
	// Cross-check the hardware against the reference evaluator first.
	if err := ex.Verify(inputs[:64]); err != nil {
		log.Fatal(err)
	}
	outs, err := ex.Run(inputs)
	if err != nil {
		log.Fatal(err)
	}

	var hist [4]int
	for _, o := range outs {
		hist[o[0]/64]++
	}
	fmt.Println("stretched-tile histogram (quartiles):", hist)

	s := ex.Stats()
	fmt.Printf("kernel: %d searches + %d writes per pass, %.0f ns\n",
		s.Searches, s.Writes, ex.LatencyNS())
	fmt.Printf("one pass transforms every pixel in the array: %d pixels here,\n", pixels)
	fmt.Println("33,554,432 on the full 1 GB chip — same instruction stream.")

	// Flip to binarise mode: the same compiled kernel, different data.
	for i := range inputs {
		inputs[i][3] = 1
	}
	outs, err = ex.Run(inputs)
	if err != nil {
		log.Fatal(err)
	}
	black, white := 0, 0
	for _, o := range outs {
		if o[0] == 0 {
			black++
		} else {
			white++
		}
	}
	fmt.Printf("binarised: %d black, %d white\n", black, white)
}
