module hyperap

go 1.22
