// Package hyperap is the public API of this repository: a full-stack
// reproduction of "Hyper-AP: Enhancing Associative Processing Through A
// Full-Stack Optimization" (Zha & Li, ISCA 2020).
//
// The package wraps the internal layers — the 2D2R TCAM substrate, the
// Hyper-AP abstract machine and micro-architecture simulator, and the
// compilation framework for the constrained C-like language — behind two
// entry points:
//
//   - Compile turns a C-like program (§V-A of the paper) into an
//     Executable for a chosen machine configuration; Executable.Run
//     executes it SIMD-style, one data element per word row, on the
//     simulated hardware. Executable.RunBatch accepts batches of any
//     size, sharding them 256 slots per PE across a multi-PE chip and
//     executing the shards concurrently on a worker pool.
//   - NewAssociativeMemory exposes the raw associative primitives
//     (multi-pattern search, tag accumulation, associative write,
//     population count, priority index) for content-addressable
//     workloads that need no compiler.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured evaluation.
package hyperap

import (
	"fmt"

	"hyperap/internal/arch"
	"hyperap/internal/bits"
	"hyperap/internal/compile"
	"hyperap/internal/encoding"
	"hyperap/internal/isa"
	"hyperap/internal/lut"
	"hyperap/internal/model"
	"hyperap/internal/tcam"
	"hyperap/internal/tech"
)

// Option configures compilation.
type Option func(*compile.Target)

// WithCMOS targets the CMOS TCAM technology (Twrite/Tsearch = 1) instead
// of the default RRAM (= 10).
func WithCMOS() Option {
	return func(t *compile.Target) { t.Tech = tech.CMOS() }
}

// WithTraditionalAP targets the traditional associative processor:
// Single-Search-Single-Pattern, Single-Search-Single-Write, monolithic
// array design (the paper's baseline execution model, Fig. 2).
func WithTraditionalAP() Option {
	return func(t *compile.Target) {
		t.Mode = lut.ModeTraditional
		t.Monolithic = true
	}
}

// WithLUTInputs overrides the lookup-table input limit (default 12, the
// paper's choice in §V-B.4; 2..12).
func WithLUTInputs(k int) Option {
	return func(t *compile.Target) { t.K = k }
}

// WithMonolithicArray uses the traditional single-crossbar TCAM array
// (writes take twice as long; the Fig. 19b ablation).
func WithMonolithicArray() Option {
	return func(t *compile.Target) { t.Monolithic = true }
}

// WithoutAccumulation disables the accumulation unit so every search is
// followed by a write (the Fig. 19b ablation).
func WithoutAccumulation() Option {
	return func(t *compile.Target) { t.NoAccumulation = true }
}

// Stats are the compilation statistics (searches, writes, cycles …).
type Stats = compile.Stats

// ProgramHandle returns the content hash ("sha256:…") that identifies a
// program compiled from src with the given options — the same handle
// hyperap-serve assigns in POST /v1/compile responses and accepts in
// POST /v1/run, so a client can address a server-cached program without
// re-sending the source.
func ProgramHandle(src string, opts ...Option) string {
	tgt := compile.HyperTarget()
	for _, o := range opts {
		o(&tgt)
	}
	return compile.Fingerprint(src, tgt)
}

// Executable is a compiled Hyper-AP program.
//
// An Executable is immutable after Compile: Run, RunBatch, Report,
// ReportBatch, Verify, Reference and every accessor build fresh simulator
// state per call and never mutate the program, so one Executable may be
// shared and executed by any number of goroutines concurrently. This is
// the guarantee the hyperap-serve program cache relies on (one cached
// compile serving many in-flight requests); it is enforced by
// race-enabled stress tests.
type Executable struct {
	ex *compile.Executable
}

// Compile builds a program written in the constrained C-like language
// (Fig. 8): arbitrary-width unsigned int(N)/int(N), bool, structs,
// fixed-size arrays, compile-time-unrollable loops, both-branch
// conditionals, and the sqrt/exp/abs/min/max intrinsics.
func Compile(src string, opts ...Option) (*Executable, error) {
	tgt := compile.HyperTarget()
	for _, o := range opts {
		o(&tgt)
	}
	ex, err := compile.CompileSource(src, tgt)
	if err != nil {
		return nil, err
	}
	return &Executable{ex: ex}, nil
}

// Run executes the program for a batch of data elements (at most 256, one
// per word row of a PE) on the simulated hardware and returns each
// element's outputs. An empty batch is an error; larger batches go
// through RunBatch, which shards them across PEs.
func (e *Executable) Run(inputs [][]uint64) ([][]uint64, error) {
	outs, _, err := e.ex.Run(inputs)
	return outs, err
}

// RunOption configures the sharded batch-execution path (RunBatch and
// ReportBatch).
type RunOption = compile.RunOption

// WithParallelism bounds the batch worker pool to n goroutines; n <= 0
// restores the default (GOMAXPROCS).
func WithParallelism(n int) RunOption { return compile.WithParallelism(n) }

// RunBatch executes the program for a batch of any size: slots are
// sharded 256 per PE across a multi-PE chip, and the shards execute
// concurrently on a bounded worker pool (WithParallelism). An empty batch
// is an error.
func (e *Executable) RunBatch(inputs [][]uint64, opts ...RunOption) ([][]uint64, error) {
	outs, _, err := e.ex.RunBatch(inputs, opts...)
	return outs, err
}

// RunReport is the full result of an execution: outputs plus the
// simulator's physical accounting.
type RunReport struct {
	Outputs [][]uint64
	// PEs is the number of processing elements the batch was sharded
	// onto (1 for Report, ceil(slots/256) for ReportBatch).
	PEs int
	// Cycles is the program's execution time in clock cycles (Table I
	// costs); multiply by the clock period for wall time. Every PE steps
	// the same instruction stream, so this is a per-pass quantity: it
	// does not grow with the PE count.
	Cycles int64
	// EnergyJ is the energy of the execution (search, write, control,
	// V/3 sneak leakage), aggregated across every PE of the chip.
	EnergyJ float64
	// MaxCellWrites is the largest number of programming pulses any
	// single RRAM cell on any PE received — the endurance-relevant
	// quantity that Multi-Search-Single-Write keeps low.
	MaxCellWrites uint32
}

func reportFromChip(outs [][]uint64, chip *arch.Chip) *RunReport {
	r := chip.Report()
	return &RunReport{
		Outputs:       outs,
		PEs:           chip.NumPEs(),
		Cycles:        r.Cycles,
		EnergyJ:       r.Energy.TotalJ(),
		MaxCellWrites: r.MaxCellWrites,
	}
}

// Report executes the program like Run and additionally returns the
// physical accounting.
func (e *Executable) Report(inputs [][]uint64) (*RunReport, error) {
	outs, chip, err := e.ex.Run(inputs)
	if err != nil {
		return nil, err
	}
	return reportFromChip(outs, chip), nil
}

// ReportBatch executes the program like RunBatch and additionally returns
// the physical accounting aggregated across all PEs of the sharded chip.
func (e *Executable) ReportBatch(inputs [][]uint64, opts ...RunOption) (*RunReport, error) {
	outs, chip, err := e.ex.RunBatch(inputs, opts...)
	if err != nil {
		return nil, err
	}
	return reportFromChip(outs, chip), nil
}

// Verify runs the program on the simulator and cross-checks every output
// against the reference evaluator.
func (e *Executable) Verify(inputs [][]uint64) error {
	return e.ex.CheckAgainstReference(inputs)
}

// Reference evaluates the program's dataflow graph directly (the golden
// model), without simulating the hardware.
func (e *Executable) Reference(input []uint64) []uint64 {
	return e.ex.Reference(input)
}

// Stats returns the compilation statistics.
func (e *Executable) Stats() Stats { return e.ex.Stats }

// LatencyNS returns the per-pass latency on the target technology.
func (e *Executable) LatencyNS() float64 { return e.ex.LatencyNS() }

// Disassemble returns the generated instruction stream as text.
func (e *Executable) Disassemble() string { return e.ex.Prog.String() }

// Binary returns the program encoded in the binary instruction format of
// Table I.
func (e *Executable) Binary() []byte { return isa.EncodeProgram(e.ex.Prog) }

// InputNames returns the declared inputs in order.
func (e *Executable) InputNames() []string {
	names := make([]string, len(e.ex.Inputs))
	for i, c := range e.ex.Inputs {
		names[i] = fmt.Sprintf("%s:%d", c.Name, c.Width)
	}
	return names
}

// AssociativeMemory exposes the raw Hyper-AP machine: a ternary CAM with
// the extended two-bit-encoding search keys, the accumulation unit, and
// the reduction tree. Words are stored as plain bit patterns (one TCAM
// bit per data bit).
type AssociativeMemory struct {
	m     *model.HyperAP
	width int
}

// NewAssociativeMemory builds a rows × width associative memory on the
// separated-array TCAM design.
func NewAssociativeMemory(rows, width int) (*AssociativeMemory, error) {
	if rows <= 0 || rows > tech.PERows || width <= 0 || width > tech.PEBits {
		return nil, fmt.Errorf("hyperap: memory must be within %d rows × %d bits", tech.PERows, tech.PEBits)
	}
	return &AssociativeMemory{
		m:     model.NewHyperAP(tcam.NewSeparated(rows, width, tcam.DefaultParams())),
		width: width,
	}, nil
}

// mustStore asserts a load/write on the fault-free memory machine
// succeeded: AssociativeMemory is built without fault injection, so the
// TCAM layer can never report a verify failure here.
func mustStore(err error) {
	if err != nil {
		panic(fmt.Sprintf("hyperap: store on fault-free memory failed: %v", err))
	}
}

// Store writes a word into a row (host load path).
func (a *AssociativeMemory) Store(row int, value uint64) {
	for b := 0; b < a.width; b++ {
		mustStore(a.m.LoadBit(row, b, value>>uint(b)&1 == 1))
	}
}

// StoreTernary writes a word with don't-care positions: maskedBits
// positions hold the X state and match any query bit.
func (a *AssociativeMemory) StoreTernary(row int, value, dontCare uint64) {
	for b := 0; b < a.width; b++ {
		if dontCare>>uint(b)&1 == 1 {
			mustStore(a.m.Load(row, b, bits.SX))
		} else {
			mustStore(a.m.LoadBit(row, b, value>>uint(b)&1 == 1))
		}
	}
}

// Search compares value (restricted to the positions set in mask) against
// every stored word in parallel, replacing the tags.
func (a *AssociativeMemory) Search(value, mask uint64) {
	a.m.Search(a.keys(value, mask), false)
}

// SearchAccumulate ORs the match results into the tags
// (Multi-Search-Single-Write's accumulation, Fig. 4c).
func (a *AssociativeMemory) SearchAccumulate(value, mask uint64) {
	a.m.Search(a.keys(value, mask), true)
}

func (a *AssociativeMemory) keys(value, mask uint64) []bits.Key {
	ks := make([]bits.Key, a.width)
	for b := 0; b < a.width; b++ {
		switch {
		case mask>>uint(b)&1 == 0:
			ks[b] = bits.KDC
		case value>>uint(b)&1 == 1:
			ks[b] = bits.K1
		default:
			ks[b] = bits.K0
		}
	}
	return ks
}

// Count returns the number of tagged words (the Count instruction's
// population count).
func (a *AssociativeMemory) Count() int { return a.m.Count() }

// Index returns the first tagged word's row, or -1 (the Index
// instruction's priority encoding).
func (a *AssociativeMemory) Index() int { return a.m.Index() }

// Matches returns all tagged rows.
func (a *AssociativeMemory) Matches() []int {
	var out []int
	tags := a.m.Tags()
	for r := 0; r < tags.Len(); r++ {
		if tags.Get(r) {
			out = append(out, r)
		}
	}
	return out
}

// WriteTagged writes the given bits (restricted to mask) into every
// tagged word in parallel (the associative write, Fig. 1c).
func (a *AssociativeMemory) WriteTagged(value, mask uint64) {
	for b := 0; b < a.width; b++ {
		if mask>>uint(b)&1 == 1 {
			_, err := a.m.Write(b, bits.KeyForBit(value>>uint(b)&1 == 1))
			mustStore(err)
		}
	}
}

// Load reads a stored word back; don't-care bits read as 0 with their
// position reported in dontCare.
func (a *AssociativeMemory) Load(row int) (value, dontCare uint64) {
	for b := 0; b < a.width; b++ {
		switch a.m.TCAM().State(row, b) {
		case bits.S1:
			value |= 1 << uint(b)
		case bits.SX:
			dontCare |= 1 << uint(b)
		}
	}
	return value, dontCare
}

// Ops returns the search/write operation counts accumulated so far.
func (a *AssociativeMemory) Ops() (searches, writes int64) {
	return a.m.Ops.Searches, a.m.Ops.Writes
}

// PairSubsetKey demonstrates the Single-Search-Multi-Pattern mechanism at
// the API level: it returns the two-position ternary key that matches
// exactly the given subset of a two-bit value's four possibilities
// (Fig. 5c); ok is false only for the empty subset.
func PairSubsetKey(subset uint8) (string, bool) {
	k1, k0, ok := encoding.KeyForPairSubset(encoding.Subset(subset))
	if !ok {
		return "", false
	}
	return encoding.PairKeyString(k1, k0), true
}
