package hyperap

import (
	"bytes"
	"testing"

	"hyperap/internal/isa"
)

// TestBinaryRoundTrip drives Executable.Binary end to end: for a set of
// public-API programs across option variants, decoding the emitted
// binary must reproduce the exact instruction stream (same disassembly,
// same re-encoded bytes). The per-kernel property test lives in
// internal/workload; this covers the public entry point.
func TestBinaryRoundTrip(t *testing.T) {
	sources := []string{
		`unsigned int(6) main(unsigned int(5) a, unsigned int(5) b){ return a + b; }`,
		`unsigned int(16) main(unsigned int(8) a, unsigned int(8) b){ return a * b; }`,
		`unsigned int(8) main(unsigned int(8) a){
			unsigned int(8) r;
			if (a > 100) { r = a - 100; } else { r = a; }
			return max(r, 7);
		}`,
	}
	variants := map[string][]Option{
		"hyper":       nil,
		"cmos":        {WithCMOS()},
		"traditional": {WithTraditionalAP()},
		"noacc":       {WithoutAccumulation()},
	}
	for name, opts := range variants {
		for i, src := range sources {
			ex, err := Compile(src, opts...)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, i, err)
			}
			bin := ex.Binary()
			dec, err := isa.DecodeProgram(bin)
			if err != nil {
				t.Fatalf("%s/%d: decode: %v", name, i, err)
			}
			if got, want := dec.String(), ex.Disassemble(); got != want {
				t.Errorf("%s/%d: decoded disassembly diverges:\n got:\n%s\nwant:\n%s", name, i, got, want)
			}
			if !bytes.Equal(isa.EncodeProgram(dec), bin) {
				t.Errorf("%s/%d: re-encode is not identity", name, i)
			}
		}
	}
}

// TestProgramHandle pins the handle-reuse contract: the public helper,
// distinctness across options, and stability across calls.
func TestProgramHandle(t *testing.T) {
	src := `unsigned int(6) main(unsigned int(5) a, unsigned int(5) b){ return a + b; }`
	h := ProgramHandle(src)
	if h == "" || h != ProgramHandle(src) {
		t.Fatalf("handle not deterministic: %q", h)
	}
	if ProgramHandle(src, WithCMOS()) == h {
		t.Error("different options must change the handle")
	}
	if ProgramHandle(src+" ") == h {
		t.Error("different source must change the handle")
	}
}
