# Tier-1 verification plus the race-enabled gate that keeps the sharded
# batch-execution engine (internal/arch ExecuteParallel, compile RunBatch)
# honest. `make check` is the pre-merge bar.

GO ?= go

.PHONY: build test vet staticcheck race race-short check bench bench-json cover trace-demo fuzz fault-campaign crash-test cluster-e2e chaos-e2e

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Skips with a note when the staticcheck
# binary is not installed (it is not vendored; CI installs it).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# The concurrency gate: vet, staticcheck (if present) plus every test
# under the race detector.
check: vet staticcheck race

race:
	$(GO) test -race ./...

# Iteration-speed variant: -short skips the 32-bit heavy-compile figures,
# keeping the run focused on the worker-pool and simulator paths.
race-short:
	$(GO) test -race -short ./...

# The multi-PE scaling benchmarks (compare RunBatch vs RunBatchSerial for
# the worker-pool speedup on a multi-core host).
bench:
	$(GO) test -run=NONE -bench=RunBatch -benchtime=2x .

# The persisted perf trajectory: measure ns/slot and slots/sec at 1/4/16
# PEs (bit-plane core vs the retained per-cell electrical core) plus the
# serve p50/p95/p99 and the cluster 1-vs-3-worker comparison, and write
# the snapshot to $(BENCH_JSON) (a CI artifact). Bump PR for each new
# snapshot.
BENCH_JSON ?= BENCH_10.json
PR ?= 10
bench-json:
	$(GO) run ./cmd/hyperap-bench -perf-json $(BENCH_JSON) -pr $(PR)

# The multi-node e2e smoke: build real hyperap-serve and hyperap-coord
# binaries, run 3 workers + a coordinator as separate processes, drive
# mixed-fingerprint load, SIGKILL one worker mid-stream, and require
# zero wrong results with eventual 200s. Also drives one ?trace=1
# request end to end (the stitched Perfetto timeline must carry spans
# from >= 2 process tracks; written to cluster-trace.json, a CI
# artifact) and lints every binary's /metrics/prometheus exposition.
# cluster-metrics.json (a CI artifact) keeps the post-kill /cluster and
# /metrics views.
cluster-e2e:
	HYPERAP_CLUSTER_E2E=1 HYPERAP_CLUSTER_METRICS=$(CURDIR)/cluster-metrics.json \
		HYPERAP_CLUSTER_TRACE=$(CURDIR)/cluster-trace.json \
		$(GO) test -race -run TestClusterProcE2E -v ./internal/cluster/

# The deterministic chaos campaign (DESIGN.md §15): for each seed, a
# real 3-worker cluster behind fault-injecting proxies (latency spikes,
# TCP resets, blackholes, slow-loris bodies, truncated responses,
# bit-flipped payloads) is driven with verifiable load. The bar: zero
# wrong results, zero requests outliving the propagated deadline plus
# grace, and at least one breaker open→half-open→closed recovery.
# chaos-report.json is the CI artifact; a failing seed reproduces with
# CHAOS_SEED=<n> go run ./cmd/hyperap-chaos.
CHAOS_SEEDS ?= 1,2,3,4,5
chaos-e2e:
	$(GO) run ./cmd/hyperap-chaos -seeds $(CHAOS_SEEDS) -json chaos-report.json

# The crash-safety gate for the durable state store: the torture sweep
# kills the atomic writer at byte offsets across the whole record
# (truncated temps, torn renames) and proves every recovery is either a
# bit-identical restore or a detected, quarantined fallback — under the
# race detector, with the serve-layer persistence suite riding along.
crash-test:
	$(GO) test -race -run 'TestCrashTorture|TestTortureRestore|TestCorruptionQuarantine|TestOpenSweepsTemps' -v ./internal/store/
	$(GO) test -race -run 'TestWarmRestart|TestStaleCheckpoint|TestEviction|TestStoreWrite' ./internal/serve/

# Coverage profile across every package (uploaded as a CI artifact).
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Native-Go fuzz smoke over the ISA binary decoder: Decode must never
# panic, and anything that decodes must round-trip decode→encode→decode.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/isa

# Small deterministic fault-injection campaign (fixed seed → fixed defect
# maps → fixed numbers); fault-campaign.json is the CI artifact. The
# sweep demonstrates the repair story: with spare rows/PEs faults are
# absorbed, without them the same defect maps fail loudly — and no run
# ever completes with a silently wrong result.
fault-campaign:
	$(GO) run ./cmd/hyperap-faults -kernel add -seed 1 -json fault-campaign.json

# Emit a sample Perfetto trace (trace-demo.json) from the example add
# kernel — load it at ui.perfetto.dev. Exercises the full traced
# RunBatch path end to end.
trace-demo:
	$(GO) run ./cmd/hyperap-run -verify=false -trace-json trace-demo.json examples/kernels/add.hap 3,4 31,31
	@echo "wrote trace-demo.json (open at ui.perfetto.dev)"
