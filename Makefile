# Tier-1 verification plus the race-enabled gate that keeps the sharded
# batch-execution engine (internal/arch ExecuteParallel, compile RunBatch)
# honest. `make check` is the pre-merge bar.

GO ?= go

.PHONY: build test vet race race-short check bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrency gate: vet plus every test under the race detector.
check: vet race

race:
	$(GO) test -race ./...

# Iteration-speed variant: -short skips the 32-bit heavy-compile figures,
# keeping the run focused on the worker-pool and simulator paths.
race-short:
	$(GO) test -race -short ./...

# The multi-PE scaling benchmarks (compare RunBatch vs RunBatchSerial for
# the worker-pool speedup on a multi-core host).
bench:
	$(GO) test -run=NONE -bench=RunBatch -benchtime=2x .
