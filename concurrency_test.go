package hyperap

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestExecutableConcurrentCallers is the stress test behind the
// documented guarantee that one Executable may be shared by concurrent
// callers: 32 goroutines hammer the same compiled program through Run,
// RunBatch, ReportBatch and Verify with distinct inputs, checking every
// output against the reference evaluator. Run under -race by
// `make check` — a data race anywhere in the execution path (shared chip
// state, layout mutation, stats aliasing) fails the run.
func TestExecutableConcurrentCallers(t *testing.T) {
	ex, err := Compile(`unsigned int(6) main(unsigned int(5) a, unsigned int(5) b){ return a + b; }`)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 32
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			inputs := make([][]uint64, 1+rng.Intn(300)) // some spill onto a second PE
			for i := range inputs {
				inputs[i] = []uint64{rng.Uint64() & 31, rng.Uint64() & 31}
			}
			var outs [][]uint64
			var err error
			switch g % 4 {
			case 0:
				outs, err = ex.Run(inputs[:min(len(inputs), 256)])
				inputs = inputs[:min(len(inputs), 256)]
			case 1:
				outs, err = ex.RunBatch(inputs)
			case 2:
				rep, rerr := ex.ReportBatch(inputs)
				if rerr != nil {
					errs <- rerr
					return
				}
				if rep.EnergyJ <= 0 || rep.Cycles == 0 {
					t.Errorf("goroutine %d: empty report %+v", g, rep)
				}
				outs, err = rep.Outputs, nil
			default:
				if err := ex.Verify(inputs); err != nil {
					errs <- err
				}
				return
			}
			if err != nil {
				errs <- err
				return
			}
			for i, vals := range inputs {
				if want := ex.Reference(vals); !reflect.DeepEqual(outs[i], want) {
					t.Errorf("goroutine %d slot %d: got %v, want %v", g, i, outs[i], want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
