package hyperap

// Benchmark harness: one testing.B benchmark per paper table/figure (see
// DESIGN.md §3). Each benchmark regenerates its experiment through
// internal/bench and reports the headline quantities as custom metrics,
// so `go test -bench=. -benchmem` reproduces the whole evaluation.
// Compiled executables are cached across benchmarks, so the first
// iteration carries the compilation cost.

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"hyperap/internal/bench"
	"hyperap/internal/compile"
	"hyperap/internal/tech"
	"hyperap/internal/workload"
)

func runExperiment(b *testing.B, id string) *bench.Table {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		tbl, err = e.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

// parseCell converts a table cell like "592", "3.3x" to a float.
func parseCell(b *testing.B, s string) float64 {
	b.Helper()
	s = strings.TrimSuffix(s, "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", s, err)
	}
	return v
}

// BenchmarkFig2TraditionalAdd1 and BenchmarkFig5HyperAdd1: the 1-bit
// addition operation counts (14 vs 6 operations).
func BenchmarkFig2TraditionalAdd1(b *testing.B) {
	tbl := runExperiment(b, "fig2")
	b.ReportMetric(parseCell(b, tbl.Rows[0][3]), "ops")
}

func BenchmarkFig5HyperAdd1(b *testing.B) {
	tbl := runExperiment(b, "fig5")
	b.ReportMetric(parseCell(b, tbl.Rows[1][3]), "ops")
}

// BenchmarkTab1ISA regenerates Table I.
func BenchmarkTab1ISA(b *testing.B) { runExperiment(b, "tab1") }

// BenchmarkTab2Config regenerates Table II.
func BenchmarkTab2Config(b *testing.B) { runExperiment(b, "tab2") }

// BenchmarkFig12Optimisations regenerates the merging/embedding example
// counts.
func BenchmarkFig12Optimisations(b *testing.B) {
	tbl := runExperiment(b, "fig12")
	b.ReportMetric(parseCell(b, tbl.Rows[0][1]), "merged-searches")
	b.ReportMetric(parseCell(b, tbl.Rows[1][1]), "embedded-searches")
}

// BenchmarkFig13TwoBitAdd regenerates the compiled 2-bit addition.
func BenchmarkFig13TwoBitAdd(b *testing.B) { runExperiment(b, "fig13") }

// benchArithmetic reports one operation's Fig. 15/16 row.
func benchArithmetic(b *testing.B, op string, width int) {
	src, opsPerPass, err := bench.ArithmeticSource(op, width)
	if err != nil {
		b.Fatal(err)
	}
	var ex *compile.Executable
	for i := 0; i < b.N; i++ {
		ex, err = bench.CompileCached(op+strconv.Itoa(width), src, compile.HyperTarget())
		if err != nil {
			b.Fatal(err)
		}
	}
	chip := tech.HyperAPChip()
	lat := ex.LatencyNS()
	b.ReportMetric(lat, "latency-ns")
	b.ReportMetric(chip.Throughput(lat, opsPerPass), "GOPS")
	b.ReportMetric(float64(ex.Stats.Searches), "searches")
	b.ReportMetric(float64(ex.Stats.Writes), "writes")
}

// Fig. 15: 32-bit operations.
func BenchmarkFig15Add32(b *testing.B)  { benchArithmetic(b, "Add", 32) }
func BenchmarkFig15Mul32(b *testing.B)  { benchArithmetic(b, "Mul", 32) }
func BenchmarkFig15Div32(b *testing.B)  { benchArithmetic(b, "Div", 32) }
func BenchmarkFig15Sqrt32(b *testing.B) { benchArithmetic(b, "Sqrt", 32) }
func BenchmarkFig15Exp32(b *testing.B)  { benchArithmetic(b, "Exp", 32) }

// Fig. 16: 16-bit operations (flexible-precision advantage).
func BenchmarkFig16Add16(b *testing.B)  { benchArithmetic(b, "Add", 16) }
func BenchmarkFig16Mul16(b *testing.B)  { benchArithmetic(b, "Mul", 16) }
func BenchmarkFig16Div16(b *testing.B)  { benchArithmetic(b, "Div", 16) }
func BenchmarkFig16Sqrt16(b *testing.B) { benchArithmetic(b, "Sqrt", 16) }
func BenchmarkFig16Exp16(b *testing.B)  { benchArithmetic(b, "Exp", 16) }

// Fig. 17: operation merging and operand embedding.
func BenchmarkFig17MultiAdd(b *testing.B) { benchArithmetic(b, "Multi_Add", 32) }
func BenchmarkFig17AddImm(b *testing.B)   { benchArithmetic(b, "Add_i", 32) }
func BenchmarkFig17MulImm(b *testing.B)   { benchArithmetic(b, "Mul_i", 32) }
func BenchmarkFig17DivImm(b *testing.B)   { benchArithmetic(b, "Div_i", 32) }

// Fig. 18: the kernel study; one benchmark per kernel plus the summary.
func benchKernel(b *testing.B, name string) {
	k, err := workload.KernelByName(name)
	if err != nil {
		b.Fatal(err)
	}
	var r bench.KernelResult
	for i := 0; i < b.N; i++ {
		r, err = bench.EvaluateKernel(k)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.HyperSpeedup, "speedup-vs-gpu")
	b.ReportMetric(r.HyperVsIMP, "speedup-vs-imp")
	b.ReportMetric(r.EnergyReductionIMP, "energy-reduction-vs-imp")
}

func BenchmarkFig18Backprop(b *testing.B)      { benchKernel(b, "backprop") }
func BenchmarkFig18Kmeans(b *testing.B)        { benchKernel(b, "kmeans") }
func BenchmarkFig18Hotspot(b *testing.B)       { benchKernel(b, "hotspot") }
func BenchmarkFig18Pathfinder(b *testing.B)    { benchKernel(b, "pathfinder") }
func BenchmarkFig18Srad(b *testing.B)          { benchKernel(b, "srad") }
func BenchmarkFig18Streamcluster(b *testing.B) { benchKernel(b, "streamcluster") }
func BenchmarkFig18NW(b *testing.B)            { benchKernel(b, "nw") }
func BenchmarkFig18LUD(b *testing.B)           { benchKernel(b, "lud") }

// Fig. 19a: Hyper-AP vs traditional AP on both technologies.
func BenchmarkFig19aTraditionalComparison(b *testing.B) {
	tbl := runExperiment(b, "fig19a")
	b.ReportMetric(parseCell(b, tbl.Rows[1][5]), "rram-improvement")
	b.ReportMetric(parseCell(b, tbl.Rows[3][5]), "cmos-improvement")
}

// Fig. 19b: mechanism breakdown.
func BenchmarkFig19bBreakdown(b *testing.B) { runExperiment(b, "fig19b") }

// Ablations beyond the paper.
func BenchmarkAblAlpha(b *testing.B) { runExperiment(b, "abl-alpha") }
func BenchmarkAblK(b *testing.B)     { runExperiment(b, "abl-k") }
func BenchmarkAblPair(b *testing.B)  { runExperiment(b, "abl-pair") }
func BenchmarkAblArray(b *testing.B) { runExperiment(b, "abl-array") }

// BenchmarkSimulatorSearch measures the raw simulator: one multi-pattern
// search over a full 256×256 PE.
func BenchmarkSimulatorSearch(b *testing.B) {
	am, err := NewAssociativeMemory(256, 64)
	if err != nil {
		b.Fatal(err)
	}
	for r := 0; r < 256; r++ {
		am.Store(r, uint64(r)*2654435761)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		am.Search(uint64(i), 0xFFFF)
	}
}

// BenchmarkCompileAdd32 measures compilation throughput itself.
func BenchmarkCompileAdd32(b *testing.B) {
	src, _, _ := bench.ArithmeticSource("Add", 32)
	for i := 0; i < b.N; i++ {
		if _, err := compile.CompileSource(src, compile.HyperTarget()); err != nil {
			b.Fatal(err)
		}
	}
}

// Extra ablations.
func BenchmarkAblCluster(b *testing.B) { runExperiment(b, "abl-cluster") }
func BenchmarkAblMargin(b *testing.B)  { runExperiment(b, "abl-margin") }

// benchRunBatch executes one full batch (256 slots per PE) through the
// sharded batch-execution engine with the given worker pool bound.
func benchRunBatch(b *testing.B, pes, workers int) {
	ex, err := bench.ScalingExecutable()
	if err != nil {
		b.Fatal(err)
	}
	inputs := bench.ScalingInputs(pes * tech.PERows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ex.RunBatch(inputs, compile.WithParallelism(workers)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(inputs))*float64(b.N)/b.Elapsed().Seconds(), "slots/s")
}

// BenchmarkRunBatch measures the sharded multi-PE batch engine at 1, 4
// and 16 PEs with the default worker pool; compare against
// BenchmarkRunBatchSerial for the multi-worker speedup.
func BenchmarkRunBatch(b *testing.B) {
	for _, pes := range bench.ScalingPEs {
		b.Run(fmt.Sprintf("pes=%d", pes), func(b *testing.B) { benchRunBatch(b, pes, 0) })
	}
}

// BenchmarkRunBatchSerial runs the same sharded batches on a single
// worker — the per-shard-serial baseline for BenchmarkRunBatch.
func BenchmarkRunBatchSerial(b *testing.B) {
	for _, pes := range bench.ScalingPEs {
		b.Run(fmt.Sprintf("pes=%d", pes), func(b *testing.B) { benchRunBatch(b, pes, 1) })
	}
}
