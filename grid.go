package hyperap

import (
	"fmt"

	"hyperap/internal/compile"
	"hyperap/internal/grid"
	"hyperap/internal/isa"
)

// Dir selects an inter-PE shift direction on the chip's local data path
// (the MovR instruction, §IV-A.6).
type Dir int

// Shift directions.
const (
	Up Dir = iota
	Left
	Right
	Down
)

func (d Dir) isa() isa.Dir {
	switch d {
	case Up:
		return isa.DirUp
	case Left:
		return isa.DirLeft
	case Right:
		return isa.DirRight
	default:
		return isa.DirDown
	}
}

// WithGridLayout compiles for iterative multi-PE execution: inputs are
// stored as plain bits in stable columns so the inter-PE communication
// macros can refill them between passes. Required by NewGrid's
// ShiftColumns.
func WithGridLayout() Option {
	return func(t *compile.Target) { t.SingleBitInputs = true }
}

// Grid runs a compiled program over a chain of PEs with neighbour
// exchange on the local links — the execution style behind the paper's
// stencil and dynamic-programming kernels (§VI-D).
type Grid struct {
	g *grid.Grid
}

// NewGrid builds a grid of numPEs × rows elements for the executable
// (compile it with WithGridLayout if you intend to use ShiftColumns).
func NewGrid(e *Executable, numPEs, rows int) (*Grid, error) {
	g, err := grid.New(e.ex, numPEs, rows)
	if err != nil {
		return nil, err
	}
	return &Grid{g: g}, nil
}

// Elements returns the grid capacity.
func (g *Grid) Elements() int { return g.g.Elements() }

// Load stores element idx's input values (idx = pe*rows + row).
func (g *Grid) Load(idx int, vals []uint64) error { return g.g.Load(idx, vals) }

// Run executes one pass of the program on every element in parallel.
func (g *Grid) Run() error { return g.g.Run() }

// Read returns element idx's outputs.
func (g *Grid) Read(idx int) ([]uint64, error) { return g.g.Read(idx) }

// ShiftColumns ships output src into input dst of each PE's neighbour in
// the given direction, for all row lanes at once; edge PEs receive zero.
func (g *Grid) ShiftColumns(src, dst string, d Dir) error {
	return g.g.ShiftColumns(src, dst, d.isa())
}

// Cycles returns the total simulated cycles so far (compute passes plus
// communication macros).
func (g *Grid) Cycles() int64 { return g.g.Report().Cycles }

// String describes the grid.
func (g *Grid) String() string {
	return fmt.Sprintf("grid %d PEs × %d rows (%d elements)", g.g.PEs, g.g.Rows, g.Elements())
}
